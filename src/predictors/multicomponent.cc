#include "predictors/multicomponent.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "predictors/local.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

MultiComponentPredictor::MultiComponentPredictor(
    std::vector<ComponentSpec> global_specs,
    std::size_t selector_entries, std::size_t local_entries,
    std::size_t bimodal_entries)
    : bimodal_(std::max<std::size_t>(bimodal_entries, 64)),
      selectorMask_(selector_entries - 1)
{
    assert(isPowerOfTwo(selector_entries));
    assert(!global_specs.empty());

    // Component 0 is the bimodal one (covers biased branches
    // cheaply); a local-history two-level component catches
    // self-correlated branches no global-history component sees.
    if (local_entries > 0)
        local_ = std::make_unique<LocalPredictor>(local_entries, 10,
                                                  1024, 3);
    globals_.reserve(global_specs.size());
    for (const ComponentSpec &spec : global_specs)
        globals_.emplace_back(spec.entries, spec.historyBits);

    // The slot view is built after globals_ is complete — it points
    // into the vector, which must not reallocate afterwards.
    components_.push_back(&bimodal_);
    if (local_)
        components_.push_back(local_.get());
    for (GsharePredictor &g : globals_)
        components_.push_back(&g);

    // Start fully confident so cold branches use the longest-history
    // component only once it proves itself; ties resolve toward the
    // *later* (longer-history) component below.
    assert(components_.size() <= kMaxComponents);
    selector_.assign(selector_entries * components_.size(),
                     SatCounter(2, 3));
    componentPreds_.fill(false);
    chosenCounts_.assign(components_.size(), 0);
}

std::size_t
MultiComponentPredictor::storageBits() const
{
    std::size_t bits = selector_.size() * 2;
    for (const auto *c : components_)
        bits += c->storageBits();
    return bits;
}

void
MultiComponentPredictor::visitState(robust::StateVisitor &v)
{
    // Selector confidences are two-bit SatCounters; every component
    // then exposes its own tables, so the walk covers the full
    // storageBits() budget. Component fields are prefixed with their
    // slot so the three gshare components stay distinguishable to
    // fault plans and protection ledgers.
    v.visit(robust::satCounterField("pred.multicomponent.selector",
                                    selector_, 2));
    for (std::size_t c = 0; c < components_.size(); ++c) {
        robust::PrefixingStateVisitor pv(
            v, "pred.multicomponent.c" + std::to_string(c) + ".");
        components_[c]->visitState(pv);
    }
}

std::vector<PredictorStat>
MultiComponentPredictor::describeStats() const
{
    // Per-table contribution: how often the selector predicted with
    // each component. Component 0 is bimodal, 1 the local-history
    // component (when present), the rest ascending global history.
    std::vector<PredictorStat> stats;
    const double n = predicts_ ? static_cast<double>(predicts_) : 1.0;
    for (std::size_t c = 0; c < components_.size(); ++c)
        stats.push_back(
            {"pred.multicomponent.contribution{component=" +
                 std::to_string(c) + ":" + components_[c]->name() +
                 "}",
             static_cast<double>(chosenCounts_[c]) / n});
    stats.push_back({"pred.multicomponent.predicts",
                     static_cast<double>(predicts_)});
    return stats;
}

} // namespace bpsim
