#include "predictors/tournament.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

TournamentPredictor::TournamentPredictor(std::size_t global_entries,
                                         std::size_t local_entries,
                                         unsigned local_history_bits,
                                         std::size_t chooser_entries)
    : globalPht_(global_entries),
      local_(local_entries, local_history_bits,
             std::size_t{1} << local_history_bits, 3),
      chooser_(chooser_entries),
      globalMask_(global_entries - 1),
      chooserMask_(chooser_entries - 1),
      history_(floorLog2(global_entries))
{
    assert(isPowerOfTwo(global_entries));
    assert(isPowerOfTwo(chooser_entries));
}

std::size_t
TournamentPredictor::storageBits() const
{
    return globalPht_.storageBits() + local_.storageBits() +
           chooser_.storageBits() + history_.length();
}

std::vector<PredictorStat>
TournamentPredictor::describeStats() const
{
    const double n = predicts_ ? static_cast<double>(predicts_) : 1.0;
    const double global_share = static_cast<double>(choseGlobal_) / n;
    std::size_t chooser_strong = 0;
    for (std::size_t i = 0; i < chooser_.size(); ++i)
        chooser_strong += !chooser_.weak(i) ? 1 : 0;
    return {
        {"pred.tournament.contribution{component=global}",
         global_share},
        {"pred.tournament.contribution{component=local}",
         1.0 - global_share},
        {"pred.tournament.chooser_strong_fraction",
         static_cast<double>(chooser_strong) /
             static_cast<double>(chooser_.size())},
        {"pred.tournament.predicts",
         static_cast<double>(predicts_)},
    };
}

} // namespace bpsim
