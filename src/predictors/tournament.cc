#include "predictors/tournament.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

TournamentPredictor::TournamentPredictor(std::size_t global_entries,
                                         std::size_t local_entries,
                                         unsigned local_history_bits,
                                         std::size_t chooser_entries)
    : globalPht_(global_entries),
      local_(local_entries, local_history_bits,
             std::size_t{1} << local_history_bits, 3),
      chooser_(chooser_entries),
      globalMask_(global_entries - 1),
      chooserMask_(chooser_entries - 1),
      history_(floorLog2(global_entries))
{
    assert(isPowerOfTwo(global_entries));
    assert(isPowerOfTwo(chooser_entries));
}

std::size_t
TournamentPredictor::storageBits() const
{
    return globalPht_.size() * 2 + local_.storageBits() +
           chooser_.size() * 2 + history_.length();
}

std::size_t
TournamentPredictor::globalIndex() const
{
    // EV6 indexes the global PHT purely by global history.
    return static_cast<std::size_t>(history_.low64()) & globalMask_;
}

std::size_t
TournamentPredictor::chooserIndex() const
{
    return static_cast<std::size_t>(history_.low64()) & chooserMask_;
}

bool
TournamentPredictor::predict(Addr pc)
{
    pGlobal_ = globalPht_[globalIndex()].taken();
    pLocal_ = local_.predict(pc);
    pChoseGlobal_ = chooser_[chooserIndex()].taken();
    ++predicts_;
    choseGlobal_ += pChoseGlobal_ ? 1 : 0;
    return pChoseGlobal_ ? pGlobal_ : pLocal_;
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    // Chooser trains only when the components disagree.
    if (pGlobal_ != pLocal_)
        chooser_[chooserIndex()].update(pGlobal_ == taken);
    globalPht_[globalIndex()].update(taken);
    local_.update(pc, taken);
    history_.shiftIn(taken);
}

std::vector<PredictorStat>
TournamentPredictor::describeStats() const
{
    const double n = predicts_ ? static_cast<double>(predicts_) : 1.0;
    const double global_share = static_cast<double>(choseGlobal_) / n;
    std::size_t chooser_strong = 0;
    for (const TwoBitCounter &c : chooser_)
        chooser_strong += !c.weak() ? 1 : 0;
    return {
        {"pred.tournament.contribution{component=global}",
         global_share},
        {"pred.tournament.contribution{component=local}",
         1.0 - global_share},
        {"pred.tournament.chooser_strong_fraction",
         static_cast<double>(chooser_strong) /
             static_cast<double>(chooser_.size())},
        {"pred.tournament.predicts",
         static_cast<double>(predicts_)},
    };
}

} // namespace bpsim
