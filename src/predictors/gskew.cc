#include "predictors/gskew.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {


GskewPredictor::GskewPredictor(std::size_t bank_entries,
                               unsigned history_bits)
    : bim_(bank_entries),
      g0_(bank_entries),
      g1_(bank_entries),
      meta_(bank_entries),
      mask_(bank_entries - 1),
      indexBits_(floorLog2(bank_entries)),
      history_(history_bits == 0
                   ? std::min(3 * floorLog2(bank_entries) / 2,
                              HistoryRegister::maxLength)
                   : history_bits)
{
    assert(isPowerOfTwo(bank_entries));
}

void
GskewPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::packedCounterField("pred.2bc-gskew.bim", bim_));
    v.visit(robust::packedCounterField("pred.2bc-gskew.g0", g0_));
    v.visit(robust::packedCounterField("pred.2bc-gskew.g1", g1_));
    v.visit(robust::packedCounterField("pred.2bc-gskew.meta", meta_));
    v.visit(robust::historyField("pred.2bc-gskew.history", history_));
}

} // namespace bpsim
