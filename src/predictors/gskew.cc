#include "predictors/gskew.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

namespace {

/**
 * The skewing functions of Michaud/Seznec/Uhlig build each bank's
 * index from a different invertible mix of the same (pc, history)
 * pair. We use H(x) = rotate/xor mixes that are cheap and give the
 * required inter-bank dispersion.
 */
std::uint64_t
skewMix(std::uint64_t v, unsigned bits, unsigned variant)
{
    const std::uint64_t m = loMask(bits);
    std::uint64_t x = v & m;
    const std::uint64_t hi = (v >> bits) & m;
    switch (variant) {
      case 0:
        return x ^ hi;
      case 1:
        // H: x -> (x >> 1) ^ (lsb ? taps : 0), an LFSR step.
        return ((x >> 1) ^ ((x & 1) ? (m >> 1) ^ (m >> 3) : 0) ^ hi) &
               m;
      default:
        // H^-1-ish: shift left with feedback.
        return ((x << 1) ^ ((x >> (bits - 1)) & 1 ? 0x5 : 0) ^ hi) & m;
    }
}

} // namespace

GskewPredictor::GskewPredictor(std::size_t bank_entries,
                               unsigned history_bits)
    : bim_(bank_entries),
      g0_(bank_entries),
      g1_(bank_entries),
      meta_(bank_entries),
      mask_(bank_entries - 1),
      indexBits_(floorLog2(bank_entries)),
      history_(history_bits == 0
                   ? std::min(3 * floorLog2(bank_entries) / 2,
                              HistoryRegister::maxLength)
                   : history_bits)
{
    assert(isPowerOfTwo(bank_entries));
}

GskewPredictor::Indices
GskewPredictor::indices(Addr pc) const
{
    const std::uint64_t a = indexPc(pc);
    const std::uint64_t h = history_.fold(indexBits_);
    const std::uint64_t hshort = history_.low(indexBits_ / 2);
    Indices idx;
    idx.bim = static_cast<std::size_t>(a & mask_);
    idx.g0 = static_cast<std::size_t>(
        skewMix(a ^ h, indexBits_, 1) & mask_);
    idx.g1 = static_cast<std::size_t>(
        skewMix((a << 1) ^ h, indexBits_, 2) & mask_);
    // META sees the address and a short history, as in the EV8
    // design.
    idx.meta = static_cast<std::size_t>((a ^ (hshort << 1)) & mask_);
    return idx;
}

bool
GskewPredictor::predict(Addr pc)
{
    const Indices idx = indices(pc);
    pBim_ = bim_[idx.bim].taken();
    pG0_ = g0_[idx.g0].taken();
    pG1_ = g1_[idx.g1].taken();
    const int votes = (pBim_ ? 1 : 0) + (pG0_ ? 1 : 0) + (pG1_ ? 1 : 0);
    pEgskew_ = votes >= 2;
    pMetaGskew_ = meta_[idx.meta].taken();
    pFinal_ = pMetaGskew_ ? pEgskew_ : pBim_;
    return pFinal_;
}

void
GskewPredictor::update(Addr pc, bool taken)
{
    const Indices idx = indices(pc);
    const bool correct = pFinal_ == taken;

    if (correct) {
        // Partial update: strengthen only the side that was used,
        // and within the e-gskew side only the banks that agreed.
        if (pMetaGskew_) {
            if (pBim_ == taken)
                bim_[idx.bim].update(taken);
            if (pG0_ == taken)
                g0_[idx.g0].update(taken);
            if (pG1_ == taken)
                g1_[idx.g1].update(taken);
        } else {
            bim_[idx.bim].update(taken);
        }
        // Reinforce META only when the two sides disagreed, i.e.
        // when the choice actually mattered.
        if (pEgskew_ != pBim_)
            meta_[idx.meta].update(pMetaGskew_);
    } else {
        // Full update on a misprediction: retrain everything.
        bim_[idx.bim].update(taken);
        g0_[idx.g0].update(taken);
        g1_[idx.g1].update(taken);
        if (pEgskew_ != pBim_) {
            // Train META toward whichever side was right.
            meta_[idx.meta].update(pEgskew_ == taken);
        }
    }

    history_.shiftIn(taken);
}

void
GskewPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::counterField("pred.2bc-gskew.bim", bim_));
    v.visit(robust::counterField("pred.2bc-gskew.g0", g0_));
    v.visit(robust::counterField("pred.2bc-gskew.g1", g1_));
    v.visit(robust::counterField("pred.2bc-gskew.meta", meta_));
    v.visit(robust::historyField("pred.2bc-gskew.history", history_));
}

} // namespace bpsim
