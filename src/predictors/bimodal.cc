#include "predictors/bimodal.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : pht_(entries), mask_(entries - 1)
{
    assert(isPowerOfTwo(entries));
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & mask_;
}

bool
BimodalPredictor::predict(Addr pc)
{
    return pht_[index(pc)].taken();
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    pht_[index(pc)].update(taken);
}

void
BimodalPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::counterField("pred.bimodal.pht", pht_));
}

} // namespace bpsim
