#include "predictors/bimodal.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : pht_(entries), mask_(entries - 1)
{
    assert(isPowerOfTwo(entries));
}

void
BimodalPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::packedCounterField("pred.bimodal.pht", pht_));
}

} // namespace bpsim
