#include "predictors/yags.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

YagsPredictor::YagsPredictor(std::size_t choice_entries,
                             std::size_t cache_entries,
                             unsigned tag_bits)
    : choice_(choice_entries),
      takenCache_(cache_entries),
      notTakenCache_(cache_entries),
      choiceMask_(choice_entries - 1),
      cacheMask_(cache_entries - 1),
      cacheIndexBits_(floorLog2(cache_entries)),
      tagBits_(tag_bits),
      history_(floorLog2(cache_entries))
{
    assert(isPowerOfTwo(choice_entries));
    assert(isPowerOfTwo(cache_entries));
    assert(tag_bits >= 1 && tag_bits <= 16);
    // The taken cache starts weakly not-taken and vice versa: an
    // exception cache entry's job is to contradict the bias.
    for (auto &e : takenCache_)
        e.counter.set(1);
    for (auto &e : notTakenCache_)
        e.counter.set(2);
}

std::size_t
YagsPredictor::storageBits() const
{
    return choice_.size() * 2 +
           (takenCache_.size() + notTakenCache_.size()) *
               (2 + tagBits_ + 1) +
           history_.length();
}

std::size_t
YagsPredictor::choiceIndex(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & choiceMask_;
}

std::size_t
YagsPredictor::cacheIndex(Addr pc) const
{
    const std::uint64_t h = history_.low(cacheIndexBits_);
    return static_cast<std::size_t>((indexPc(pc) ^ h) & cacheMask_);
}

std::uint16_t
YagsPredictor::tagOf(Addr pc) const
{
    return static_cast<std::uint16_t>(indexPc(pc) & loMask(tagBits_));
}

bool
YagsPredictor::predict(Addr pc)
{
    lastBiasTaken_ = choice_[choiceIndex(pc)].taken();
    const auto &cache = lastBiasTaken_ ? takenCache_ : notTakenCache_;
    const CacheEntry &e = cache[cacheIndex(pc)];
    lastFromCache_ = e.valid && e.tag == tagOf(pc);
    lastPrediction_ =
        lastFromCache_ ? e.counter.taken() : lastBiasTaken_;
    return lastPrediction_;
}

void
YagsPredictor::update(Addr pc, bool taken)
{
    auto &cache = lastBiasTaken_ ? takenCache_ : notTakenCache_;
    CacheEntry &e = cache[cacheIndex(pc)];

    if (lastFromCache_) {
        // Train the exception entry that made the prediction.
        e.counter.update(taken);
    } else if (taken != lastBiasTaken_) {
        // The bias failed and no exception was recorded: allocate.
        e.valid = true;
        e.tag = tagOf(pc);
        e.counter.set(taken ? 2 : 1);
    }

    // The choice PHT trains toward the outcome except when it was
    // successfully overridden by the exception cache (the Bi-Mode
    // partial-update rule).
    const bool cache_correct =
        lastFromCache_ && lastPrediction_ == taken;
    if (!(lastBiasTaken_ != taken && cache_correct))
        choice_[choiceIndex(pc)].update(taken);

    history_.shiftIn(taken);
}

} // namespace bpsim
