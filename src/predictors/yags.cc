#include "predictors/yags.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

YagsPredictor::YagsPredictor(std::size_t choice_entries,
                             std::size_t cache_entries,
                             unsigned tag_bits)
    : choice_(choice_entries),
      takenCache_(cache_entries),
      notTakenCache_(cache_entries),
      choiceMask_(choice_entries - 1),
      cacheMask_(cache_entries - 1),
      cacheIndexBits_(floorLog2(cache_entries)),
      tagBits_(tag_bits),
      history_(floorLog2(cache_entries))
{
    assert(isPowerOfTwo(choice_entries));
    assert(isPowerOfTwo(cache_entries));
    assert(tag_bits >= 1 && tag_bits <= 16);
    // The taken cache starts weakly not-taken and vice versa: an
    // exception cache entry's job is to contradict the bias.
    for (auto &e : takenCache_)
        e.counter.set(1);
    for (auto &e : notTakenCache_)
        e.counter.set(2);
}

std::size_t
YagsPredictor::storageBits() const
{
    return choice_.size() * 2 +
           (takenCache_.size() + notTakenCache_.size()) *
               (2 + tagBits_ + 1) +
           history_.length();
}

} // namespace bpsim
