#include "predictors/local.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

LocalPredictor::LocalPredictor(std::size_t history_entries,
                               unsigned history_bits,
                               std::size_t pht_entries,
                               unsigned counter_bits)
    : histories_(history_entries, 0),
      pht_(pht_entries == 0 ? (std::size_t{1} << history_bits)
                            : pht_entries,
           counter_bits,
           static_cast<std::uint8_t>((1u << counter_bits) / 2 - 1)),
      historyBits_(history_bits),
      counterBits_(counter_bits),
      histMask_(history_entries - 1),
      phtMask_(pht_.size() - 1)
{
    assert(isPowerOfTwo(history_entries));
    assert(isPowerOfTwo(pht_.size()));
    assert(history_bits >= 1 && history_bits <= 64);
}

void
LocalPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::wordArrayField("pred.local.histories",
                                   histories_, historyBits_));
    v.visit(robust::packedSatField("pred.local.pht", pht_));
}

} // namespace bpsim
