#include "predictors/local.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

LocalPredictor::LocalPredictor(std::size_t history_entries,
                               unsigned history_bits,
                               std::size_t pht_entries,
                               unsigned counter_bits)
    : histories_(history_entries, 0),
      pht_(pht_entries == 0 ? (std::size_t{1} << history_bits)
                            : pht_entries,
           SatCounter(counter_bits,
                      static_cast<std::uint8_t>(
                          (1u << counter_bits) / 2 - 1))),
      historyBits_(history_bits),
      counterBits_(counter_bits),
      histMask_(history_entries - 1),
      phtMask_(pht_.size() - 1)
{
    assert(isPowerOfTwo(history_entries));
    assert(isPowerOfTwo(pht_.size()));
    assert(history_bits >= 1 && history_bits <= 64);
}

std::size_t
LocalPredictor::historyIndex(Addr pc) const
{
    return static_cast<std::size_t>(indexPc(pc)) & histMask_;
}

std::size_t
LocalPredictor::phtIndex(Addr pc) const
{
    return static_cast<std::size_t>(histories_[historyIndex(pc)]) &
           phtMask_;
}

std::uint64_t
LocalPredictor::localHistory(Addr pc) const
{
    return histories_[historyIndex(pc)];
}

bool
LocalPredictor::predict(Addr pc)
{
    return pht_[phtIndex(pc)].taken();
}

void
LocalPredictor::update(Addr pc, bool taken)
{
    pht_[phtIndex(pc)].update(taken);
    auto &h = histories_[historyIndex(pc)];
    h = ((h << 1) | (taken ? 1 : 0)) & loMask(historyBits_);
}

void
LocalPredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::wordArrayField("pred.local.histories",
                                   histories_, historyBits_));
    v.visit(robust::satCounterField("pred.local.pht", pht_,
                                    counterBits_));
}

} // namespace bpsim
