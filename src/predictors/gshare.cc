#include "predictors/gshare.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : pht_(entries),
      mask_(entries - 1),
      indexBits_(floorLog2(entries)),
      history_(history_bits == 0 ? floorLog2(entries) : history_bits)
{
    assert(isPowerOfTwo(entries));
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    // When the history is longer than the index, fold it down so all
    // bits still participate.
    const std::uint64_t h = history_.length() > indexBits_
                                ? history_.fold(indexBits_)
                                : history_.low64();
    return static_cast<std::size_t>((indexPc(pc) ^ h) & mask_);
}

bool
GsharePredictor::predict(Addr pc)
{
    return pht_[index(pc)].taken();
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    pht_[index(pc)].update(taken);
    history_.shiftIn(taken);
}

void
GsharePredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::counterField("pred.gshare.pht", pht_));
    v.visit(robust::historyField("pred.gshare.history", history_));
}

std::vector<PredictorStat>
GsharePredictor::describeStats() const
{
    // Occupancy = counters that have left the reset state; strong =
    // counters saturated in either direction. Both scan the PHT, so
    // callers only invoke this at end of run.
    std::size_t touched = 0, strong = 0;
    for (const TwoBitCounter &c : pht_) {
        touched += c.value() != 1 ? 1 : 0;
        strong += !c.weak() ? 1 : 0;
    }
    const double n = static_cast<double>(pht_.size());
    return {
        {"pred.gshare.pht_entries", n},
        {"pred.gshare.pht_occupancy",
         static_cast<double>(touched) / n},
        {"pred.gshare.pht_strong_fraction",
         static_cast<double>(strong) / n},
        {"pred.gshare.history_bits",
         static_cast<double>(history_.length())},
    };
}

} // namespace bpsim
