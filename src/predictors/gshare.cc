#include "predictors/gshare.hh"

#include <cassert>

#include "common/bitutil.hh"

namespace bpsim {

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : pht_(entries),
      mask_(entries - 1),
      indexBits_(floorLog2(entries)),
      history_(history_bits == 0 ? floorLog2(entries) : history_bits)
{
    assert(isPowerOfTwo(entries));
}

std::size_t
GsharePredictor::index(Addr pc) const
{
    // When the history is longer than the index, fold it down so all
    // bits still participate.
    const std::uint64_t h = history_.length() > indexBits_
                                ? history_.fold(indexBits_)
                                : history_.low64();
    return static_cast<std::size_t>((indexPc(pc) ^ h) & mask_);
}

bool
GsharePredictor::predict(Addr pc)
{
    return pht_[index(pc)].taken();
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    pht_[index(pc)].update(taken);
    history_.shiftIn(taken);
}

} // namespace bpsim
