#include "predictors/gshare.hh"

#include <cassert>

#include "common/bitutil.hh"
#include "robust/state_visitor.hh"

namespace bpsim {

GsharePredictor::GsharePredictor(std::size_t entries,
                                 unsigned history_bits)
    : pht_(entries),
      mask_(entries - 1),
      indexBits_(floorLog2(entries)),
      history_(history_bits == 0 ? floorLog2(entries) : history_bits)
{
    assert(isPowerOfTwo(entries));
}

void
GsharePredictor::visitState(robust::StateVisitor &v)
{
    v.visit(robust::packedCounterField("pred.gshare.pht", pht_));
    v.visit(robust::historyField("pred.gshare.history", history_));
}

std::vector<PredictorStat>
GsharePredictor::describeStats() const
{
    // Occupancy = counters that have left the reset state; strong =
    // counters saturated in either direction. Both scan the PHT, so
    // callers only invoke this at end of run.
    std::size_t touched = 0, strong = 0;
    for (std::size_t i = 0; i < pht_.size(); ++i) {
        touched += pht_.value(i) != 1 ? 1 : 0;
        strong += !pht_.weak(i) ? 1 : 0;
    }
    const double n = static_cast<double>(pht_.size());
    return {
        {"pred.gshare.pht_entries", n},
        {"pred.gshare.pht_occupancy",
         static_cast<double>(touched) / n},
        {"pred.gshare.pht_strong_fraction",
         static_cast<double>(strong) / n},
        {"pred.gshare.history_bits",
         static_cast<double>(history_.length())},
    };
}

} // namespace bpsim
