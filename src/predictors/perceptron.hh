/**
 * @file
 * Perceptron predictor (Jimenez and Lin, "Neural Methods for Dynamic
 * Branch Prediction", ACM TOCS 2002) — one of the two "most accurate
 * known" predictors the paper evaluates.
 *
 * Each branch hashes to a perceptron: a vector of signed weights
 * over the global history bits, the per-branch local history bits
 * (the paper's configuration uses both, Section 4.1.1) and a bias
 * input. The prediction is the sign of the dot product; training
 * nudges weights on mispredictions or low-confidence outputs. The
 * dot product is also why the paper charges it extra computation
 * latency: it is "a deep circuit similar to a multiplier"
 * (Section 2.2).
 */

#ifndef BPSIM_PREDICTORS_PERCEPTRON_HH
#define BPSIM_PREDICTORS_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "common/history.hh"
#include "predictors/predictor.hh"

namespace bpsim {

/** Global+local history perceptron predictor. */
class PerceptronPredictor final : public DirectionPredictor
{
  public:
    /**
     * @param num_perceptrons Rows in the weight table (any count
     *        >= 1; indexing is modulo).
     * @param global_bits Global history inputs.
     * @param local_bits Local history inputs (0 disables the local
     *        table and makes this a pure global perceptron).
     * @param local_entries Local-history table entries (power of
     *        two).
     * @param weight_bits Weight width (8 in the literature).
     */
    PerceptronPredictor(std::size_t num_perceptrons,
                        unsigned global_bits, unsigned local_bits = 0,
                        std::size_t local_entries = 1024,
                        unsigned weight_bits = 8);

    std::string name() const override { return "perceptron"; }
    std::size_t storageBits() const override;
    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void visitState(robust::StateVisitor &v) override;

    /** Training threshold theta = 1.93 h + 14 (from the TOCS paper). */
    int threshold() const { return threshold_; }

  private:
    /** The batched ensemble kernel (core/ensemble.cc) reads the
     *  geometry and weight rows directly and writes the final
     *  history state back, so same-family members can share one
     *  input-vector computation per branch. */
    friend struct PerceptronBatch;

    std::size_t rowIndex(Addr pc) const;
    std::size_t localIndex(Addr pc) const;
    void fillInputs(Addr pc);

    unsigned globalBits_;
    unsigned localBits_;
    unsigned weightBits_;
    std::size_t numRows_ = 1;
    std::size_t localMask_;
    int threshold_;
    int weightMin_;
    int weightMax_;

    /**
     * weights_[row * rowStride + j]: j=0 bias, then global, local.
     * Contiguous int16 (the SRAM width is weightBits_, charged by
     * storageBits()) so predict's dot product and update's training
     * sweep run over dense rows and auto-vectorize — see
     * common/vec_kernels.hh.
     */
    std::vector<std::int16_t> weights_;
    std::size_t rowStride_;
    HistoryRegister globalHistory_;
    std::vector<std::uint64_t> localHistories_;

    /** Scratch ±1 input vector (x[0] = 1 bias input), refilled from
     *  the live history state by fillInputs() on every call so fault
     *  injection into history bits is observed exactly as before. */
    std::vector<std::int16_t> inputs_;

    // predict() -> update() carried state
    int lastOutput_ = 0;
};

} // namespace bpsim

#endif // BPSIM_PREDICTORS_PERCEPTRON_HH
