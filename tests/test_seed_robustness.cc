/** @file Seed-robustness tests: the reproduction's qualitative
 *  claims must not be artifacts of the default seed. Each check
 *  re-runs a key ordering on several generation seeds. */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/runner.hh"

namespace bpsim {
namespace {

constexpr std::uint64_t seeds[] = {7, 1234, 987654321};

double
meanAt(const SuiteTraces &suite, PredictorKind kind, std::size_t budget)
{
    double m = 0;
    suiteAccuracy(
        suite, [&] { return makePredictor(kind, budget); }, &m);
    return m;
}

TEST(SeedRobustness, PredictorOrderingHoldsAcrossSeeds)
{
    for (const auto seed : seeds) {
        SuiteTraces suite(100000, seed);
        const double perceptron =
            meanAt(suite, PredictorKind::Perceptron, 64 * 1024);
        const double mc =
            meanAt(suite, PredictorKind::MultiComponent, 64 * 1024);
        const double gshare =
            meanAt(suite, PredictorKind::Gshare, 64 * 1024);
        const double bimodal =
            meanAt(suite, PredictorKind::Bimodal, 64 * 1024);

        EXPECT_LT(perceptron, gshare) << "seed " << seed;
        EXPECT_LT(mc, gshare) << "seed " << seed;
        EXPECT_LT(gshare, bimodal) << "seed " << seed;
    }
}

TEST(SeedRobustness, GshareFastTracksGshareAcrossSeeds)
{
    for (const auto seed : seeds) {
        SuiteTraces suite(100000, seed);
        const double gshare =
            meanAt(suite, PredictorKind::Gshare, 64 * 1024);
        const double fast =
            meanAt(suite, PredictorKind::GshareFast, 64 * 1024);
        // The pipelined organization costs at most a modest accuracy
        // premium over plain gshare, never a collapse.
        EXPECT_NEAR(fast, gshare, 1.0) << "seed " << seed;
    }
}

TEST(SeedRobustness, OverridingBubblesCostIpcAcrossSeeds)
{
    CoreConfig cfg;
    for (const auto seed : seeds) {
        SuiteTraces suite(100000, seed);
        double ideal = 0, over = 0;
        suiteTiming(
            suite, cfg,
            [] {
                return makeFetchPredictor(PredictorKind::Perceptron,
                                          512 * 1024, DelayMode::Ideal);
            },
            &ideal);
        suiteTiming(
            suite, cfg,
            [] {
                return makeFetchPredictor(PredictorKind::Perceptron,
                                          512 * 1024,
                                          DelayMode::Overriding);
            },
            &over);
        EXPECT_LT(over, ideal) << "seed " << seed;
        // At the 512KB/11-cycle point the loss is substantial on
        // every seed (the paper's headline effect).
        EXPECT_GT((ideal - over) / ideal, 0.02) << "seed " << seed;
    }
}

} // namespace
} // namespace bpsim
