/** @file Deeper behavioural tests for the two composite complex
 *  predictors: 2Bc-gskew's skewed banks / partial update, and the
 *  multi-component hybrid's storage accounting and ranking. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/gskew.hh"
#include "predictors/multicomponent.hh"

namespace bpsim {
namespace {

TEST(Gskew, StorageIsFourBanksPlusHistory)
{
    GskewPredictor p(4096);
    EXPECT_GE(p.storageBits(), 4u * 4096 * 2);
    EXPECT_LE(p.storageBits(), 4u * 4096 * 2 + 256);
}

TEST(Gskew, RecoversFromAliasingBetterThanItsBudgetInGshare)
{
    // Two anti-correlated branches engineered to collide in a
    // single-table index: the skewed banks + majority vote should
    // keep the damage bounded. (A smoke test of the e-gskew idea,
    // not a precise claim.)
    GskewPredictor p(1024);
    Rng rng(21);
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 40000; ++i) {
        const bool which = i % 2;
        // Same low address bits, different high bits.
        const Addr pc = which ? 0x10000 : 0x90000;
        const bool taken = which ? rng.nextBool(0.95)
                                 : rng.nextBool(0.05);
        const bool pred = p.predict(pc);
        p.update(pc, taken);
        if (i > 20000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.15);
}

TEST(Gskew, AdaptsMetaTowardTheWinningSide)
{
    // A branch that is pure bias (always taken): after warmup the
    // predictor must be essentially perfect on it regardless of
    // which side META favours.
    GskewPredictor p(1024);
    for (int i = 0; i < 200; ++i) {
        p.predict(0x40);
        p.update(0x40, true);
    }
    std::size_t wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        if (p.predict(0x40) != true)
            ++wrong;
        p.update(0x40, true);
    }
    EXPECT_EQ(wrong, 0u);
}

TEST(MultiComponent, ComponentCountAndStorage)
{
    MultiComponentPredictor mc(
        {{1024, 6}, {2048, 10}, {4096, 14}}, 512, 256, 512);
    // bimodal + local + 3 globals.
    EXPECT_EQ(mc.numComponents(), 5u);
    // Storage: at least the three global tables.
    EXPECT_GE(mc.storageBits(), (1024u + 2048 + 4096) * 2);
    EXPECT_EQ(mc.name(), "multicomponent");
}

TEST(MultiComponent, OmittingLocalComponentWorks)
{
    MultiComponentPredictor mc({{512, 4}}, 128, 0, 128);
    EXPECT_EQ(mc.numComponents(), 2u); // bimodal + 1 global
    for (int i = 0; i < 1000; ++i) {
        mc.predict(0x40);
        mc.update(0x40, i % 2 == 0);
    }
    SUCCEED();
}

TEST(MultiComponent, BeatsItsOwnWorstComponentOnMixedStreams)
{
    // Stream A is biased (bimodal-friendly), stream B needs long
    // history. The hybrid should do well on both simultaneously.
    MultiComponentPredictor mc(
        {{512, 2}, {4096, 12}}, 512, 256, 512);
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 40000; ++i) {
        const bool which = i % 2;
        const Addr pc = which ? 0x1000 : 0x2000;
        const bool taken = which ? true : ((i / 2) % 7 != 0);
        const bool pred = mc.predict(pc);
        mc.update(pc, taken);
        if (i > 20000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.04);
}

} // namespace
} // namespace bpsim
