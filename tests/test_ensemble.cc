/**
 * @file
 * Golden equivalence of the batched ensemble replay engine against
 * the serial path: for every factory predictor kind, a group of one
 * member per standard budget replayed in one pass must produce
 * byte-identical counts, describeStats() gauges and visitState()
 * dumps to running each member alone. Also pins the grouping rules
 * (stock-wrapped members batch with bare siblings of the same inner
 * kind; heterogeneous timing kinds merge into one group; unknown
 * user subclasses refuse), the BPSIM_ENSEMBLE=0 escape hatch, and
 * suiteAccuracyReportEnsemble's contract that its RunReport is
 * byte-identical to serial suiteAccuracyReport calls.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/ensemble.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/run_report.hh"
#include "parallel/cell_pool.hh"
#include "robust/fault_injector.hh"
#include "robust/state_visitor.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_cache.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

/** Flattens every visited field into one comparable dump. */
struct StateDump : robust::StateVisitor
{
    struct Field
    {
        std::string name;
        std::size_t count;
        unsigned bits;
        std::vector<std::uint64_t> values;

        bool
        operator==(const Field &o) const
        {
            return name == o.name && count == o.count &&
                   bits == o.bits && values == o.values;
        }
    };
    std::vector<Field> fields;

    void
    visit(const robust::StateField &f) override
    {
        Field out{f.name, f.count, f.bits, {}};
        out.values.reserve(f.count);
        for (std::size_t i = 0; i < f.count; ++i)
            out.values.push_back(f.load(i));
        fields.push_back(std::move(out));
    }
};

TraceBuffer
suiteTrace()
{
    const auto w = makeWorkload(specint2000Names().front());
    return generateTrace(*w, 40000, 9);
}

void
expectSameState(DirectionPredictor &a, DirectionPredictor &b)
{
    StateDump da;
    StateDump db;
    a.visitState(da);
    b.visitState(db);
    ASSERT_EQ(da.fields.size(), db.fields.size());
    for (std::size_t i = 0; i < da.fields.size(); ++i)
        ASSERT_TRUE(da.fields[i] == db.fields[i])
            << "field " << da.fields[i].name;

    const auto sa = a.describeStats();
    const auto sb = b.describeStats();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        ASSERT_EQ(sa[i].name, sb[i].name);
        ASSERT_EQ(sa[i].value, sb[i].value);
    }
}

TEST(EnsembleReplay, BatchedMatchesSerialEverywhere)
{
    const TraceBuffer trace = suiteTrace();
    for (const PredictorKind kind : allKinds()) {
        SCOPED_TRACE(kindName(kind));

        // One member per standard budget: the widest same-family
        // group a figure sweep would ever form.
        std::vector<std::unique_ptr<DirectionPredictor>> batched;
        std::vector<std::unique_ptr<DirectionPredictor>> serial;
        std::vector<DirectionPredictor *> members;
        for (const std::size_t budget : standardBudgets()) {
            batched.push_back(makePredictor(kind, budget));
            serial.push_back(makePredictor(kind, budget));
            members.push_back(batched.back().get());
        }
        ASSERT_TRUE(ensembleBatchable(members));

        const std::vector<AccuracyResult> rb =
            runAccuracyEnsemble(members, trace);
        ASSERT_EQ(rb.size(), members.size());
        for (std::size_t j = 0; j < members.size(); ++j) {
            SCOPED_TRACE("budget " +
                         std::to_string(standardBudgets()[j]));
            const AccuracyResult rs =
                runAccuracy(*serial[j], trace);
            ASSERT_EQ(rb[j].branches, rs.branches);
            ASSERT_EQ(rb[j].mispredictions, rs.mispredictions);
            expectSameState(*batched[j], *serial[j]);
        }
    }
}

/** A predictor the monomorphic dispatcher has never heard of. */
struct UnknownDirectionPredictor final : DirectionPredictor
{
    std::string name() const override { return "unknown"; }
    std::size_t storageBits() const override { return 8; }
    bool predict(Addr) override { return false; }
    void update(Addr, bool) override {}
};

TEST(EnsembleReplay, ProbeAcceptsWrappersRejectsMixedAndLoneGroups)
{
    auto g0 = makePredictor(PredictorKind::Gshare, 4 * 1024);
    auto g1 = makePredictor(PredictorKind::Gshare, 16 * 1024);
    auto b0 = makePredictor(PredictorKind::Bimodal, 4 * 1024);

    // A genuine same-family pair batches...
    EXPECT_TRUE(ensembleBatchable({g0.get(), g1.get()}));
    // ...but a lone config, mixed kinds, or a null member do not.
    EXPECT_FALSE(ensembleBatchable({g0.get()}));
    EXPECT_FALSE(ensembleBatchable({}));
    EXPECT_FALSE(ensembleBatchable({g0.get(), b0.get()}));
    EXPECT_FALSE(ensembleBatchable({g0.get(), nullptr}));

    // The stock fault-injection wrapper batches: its injection
    // cadence reads only its own member's update count, so the
    // hooked replay re-fires it at exactly the serial points.
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-4;
    auto f0 = std::make_unique<robust::FaultInjectingPredictor>(
        makePredictor(PredictorKind::Gshare, 4 * 1024), plan);
    auto f1 = std::make_unique<robust::FaultInjectingPredictor>(
        makePredictor(PredictorKind::Gshare, 16 * 1024), plan);
    EXPECT_TRUE(ensembleBatchable({f0.get(), f1.get()}));

    // Protected wrappers likewise, including mixed with bare
    // siblings of the same inner kind...
    robust::ProtectionConfig prot;
    prot.policy = robust::ProtectionPolicy::ParityInvalidate;
    auto p0 = makeProtectedPredictor(PredictorKind::Gshare, 4 * 1024,
                                     prot, robust::FaultPlan{});
    auto p1 = makeProtectedPredictor(PredictorKind::Gshare, 16 * 1024,
                                     prot, robust::FaultPlan{});
    EXPECT_TRUE(ensembleBatchable({p0.get(), p1.get()}));
    EXPECT_TRUE(ensembleBatchable({g0.get(), f0.get(), p0.get()}));
    EXPECT_EQ(ensembleAccuracyInnerType(*g0),
              ensembleAccuracyInnerType(*p0));

    // ...but a wrapper over a different inner kind still splits the
    // group, and an unknown user subclass refuses outright.
    auto pb = makeProtectedPredictor(PredictorKind::Bimodal, 4 * 1024,
                                     prot, robust::FaultPlan{});
    EXPECT_FALSE(ensembleBatchable({g0.get(), pb.get()}));
    UnknownDirectionPredictor u0;
    UnknownDirectionPredictor u1;
    EXPECT_EQ(ensembleAccuracyInnerType(u0), nullptr);
    EXPECT_FALSE(ensembleBatchable({&u0, &u1}));
    auto fu = std::make_unique<robust::FaultInjectingPredictor>(
        std::make_unique<UnknownDirectionPredictor>(), plan);
    EXPECT_FALSE(ensembleBatchable({fu.get(), g0.get()}));
}

TEST(EnsembleReplay, WrappedGroupReplaysViaHooksBitIdentical)
{
    // A fault-injected pair batches through the hooked monomorphic
    // loop — results must match serial runs exactly (same plan +
    // seed => identical flip sequence per member; expectSameState
    // compares injector flip/event counters via describeStats()).
    const TraceBuffer trace = suiteTrace();
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-4;
    plan.intervalBranches = 1024;

    std::vector<std::unique_ptr<DirectionPredictor>> batched;
    std::vector<std::unique_ptr<DirectionPredictor>> serial;
    std::vector<DirectionPredictor *> members;
    for (const std::size_t budget : {4096u, 16384u}) {
        batched.push_back(
            std::make_unique<robust::FaultInjectingPredictor>(
                makePredictor(PredictorKind::Gshare, budget), plan));
        serial.push_back(
            std::make_unique<robust::FaultInjectingPredictor>(
                makePredictor(PredictorKind::Gshare, budget), plan));
        members.push_back(batched.back().get());
    }
    EXPECT_TRUE(ensembleBatchable(members));

    const std::vector<AccuracyResult> rb =
        runAccuracyEnsemble(members, trace);
    ASSERT_EQ(rb.size(), members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
        const AccuracyResult rs = runAccuracy(*serial[j], trace);
        EXPECT_EQ(rb[j].branches, rs.branches);
        EXPECT_EQ(rb[j].mispredictions, rs.mispredictions);
        expectSameState(*batched[j], *serial[j]);
    }
}

TEST(EnsembleReplay, MixedWrapperGroupMatchesSerial)
{
    // One group mixing a bare gshare, a fault-injected one and a
    // protected one: each member replays through the same inner fast
    // path with its own hook chain, so every wrapper's cadence fires
    // at the exact serial update counts.
    const TraceBuffer trace = suiteTrace();
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-4;
    plan.intervalBranches = 512;
    robust::ProtectionConfig prot;
    prot.policy = robust::ProtectionPolicy::SecdedCorrect;
    robust::FaultPlan protPlan;
    protPlan.upsetRatePerBit = 1e-4;
    protPlan.intervalBranches = 512;

    const auto build = [&] {
        std::vector<std::unique_ptr<DirectionPredictor>> v;
        v.push_back(makePredictor(PredictorKind::Gshare, 16 * 1024));
        v.push_back(
            std::make_unique<robust::FaultInjectingPredictor>(
                makePredictor(PredictorKind::Gshare, 16 * 1024),
                plan));
        v.push_back(makeProtectedPredictor(
            PredictorKind::Gshare, 16 * 1024, prot, protPlan));
        return v;
    };
    auto batched = build();
    auto serial = build();
    std::vector<DirectionPredictor *> members;
    for (const auto &m : batched)
        members.push_back(m.get());
    ASSERT_TRUE(ensembleBatchable(members));

    const std::vector<AccuracyResult> rb =
        runAccuracyEnsemble(members, trace);
    ASSERT_EQ(rb.size(), members.size());
    for (std::size_t j = 0; j < members.size(); ++j) {
        SCOPED_TRACE("member " + std::to_string(j));
        const AccuracyResult rs = runAccuracy(*serial[j], trace);
        EXPECT_EQ(rb[j].branches, rs.branches);
        EXPECT_EQ(rb[j].mispredictions, rs.mispredictions);
        expectSameState(*batched[j], *serial[j]);
    }
}

/** The fig-sweep config list used by the suite-level tests: two
 *  batchable families plus one lone config on the serial path. */
std::vector<AccuracyCellConfig>
sweepConfigs()
{
    std::vector<AccuracyCellConfig> configs;
    for (const std::size_t budget :
         {1024u, 4096u, 16384u}) {
        AccuracyCellConfig c;
        c.make = [budget] {
            return makePredictor(PredictorKind::Gshare, budget);
        };
        c.name = kindName(PredictorKind::Gshare);
        c.budgetBytes = budget;
        configs.push_back(std::move(c));
    }
    for (const std::size_t budget : {2048u, 8192u}) {
        AccuracyCellConfig c;
        c.make = [budget] {
            return makePredictor(PredictorKind::Perceptron, budget);
        };
        c.name = kindName(PredictorKind::Perceptron);
        c.budgetBytes = budget;
        configs.push_back(std::move(c));
    }
    AccuracyCellConfig lone;
    lone.make = [] {
        return makePredictor(PredictorKind::Bimodal, 4096);
    };
    lone.name = kindName(PredictorKind::Bimodal);
    lone.budgetBytes = 4096;
    configs.push_back(std::move(lone));
    return configs;
}

/** Metrics dump with the ensemble engine's own gauges removed — the
 *  one allowed difference from the serial path. */
std::string
metricsSansEnsemble(const obs::MetricRegistry &metrics)
{
    std::istringstream in(metrics.toJson().dump(2));
    std::string out;
    std::string line;
    while (std::getline(in, line))
        if (line.find("core.ensemble.") == std::string::npos)
            out += line + '\n';
    return out;
}

TEST(EnsembleReplay, SuiteReportMatchesSerialByteForByte)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    // Batched sweep.
    std::vector<AccuracyCellConfig> configs = sweepConfigs();
    obs::RunReport batchedReport;
    obs::MetricRegistry batchedMetrics;
    const EnsembleStats stats = suiteAccuracyReportEnsemble(
        suite, configs, batchedReport, &batchedMetrics);

    // gshare group of 3 and perceptron group of 2 batch; the lone
    // bimodal runs serially.
    EXPECT_EQ(stats.groups, 2u);
    EXPECT_EQ(stats.batchWidth, 3u);
    EXPECT_EQ(stats.batchedCells, 5u * suite.size());
    EXPECT_EQ(stats.serialCells, 1u * suite.size());

    // Serial reference: one suiteAccuracyReport per config, in list
    // order, over the same suite.
    std::vector<AccuracyCellConfig> ref = sweepConfigs();
    obs::RunReport serialReport;
    obs::MetricRegistry serialMetrics;
    for (AccuracyCellConfig &c : ref)
        c.results = suiteAccuracyReport(
            suite, c.make, &c.meanPercent, serialReport, c.name,
            c.budgetBytes, &serialMetrics);

    EXPECT_EQ(batchedReport.toJson().dump(2),
              serialReport.toJson().dump(2));
    EXPECT_EQ(metricsSansEnsemble(batchedMetrics),
              metricsSansEnsemble(serialMetrics));
    ASSERT_EQ(configs.size(), ref.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(configs[i].meanPercent, ref[i].meanPercent);
        ASSERT_EQ(configs[i].results.size(), ref[i].results.size());
        for (std::size_t w = 0; w < ref[i].results.size(); ++w) {
            EXPECT_EQ(configs[i].results[w].branches,
                      ref[i].results[w].branches);
            EXPECT_EQ(configs[i].results[w].mispredictions,
                      ref[i].results[w].mispredictions);
        }
    }

    // The engine reports how it executed.
    EXPECT_EQ(batchedMetrics.gauge("core.ensemble.batched_cells")
                  .value(),
              static_cast<double>(stats.batchedCells));
    EXPECT_EQ(batchedMetrics.gauge("core.ensemble.batch_width")
                  .value(),
              static_cast<double>(stats.batchWidth));
}

TEST(EnsembleReplay, EnvEscapeForcesSerialIdenticalOutput)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<AccuracyCellConfig> batched = sweepConfigs();
    obs::RunReport batchedReport;
    suiteAccuracyReportEnsemble(suite, batched, batchedReport);

    ASSERT_EQ(::setenv("BPSIM_ENSEMBLE", "0", 1), 0);
    EXPECT_FALSE(ensembleEnabled());
    std::vector<AccuracyCellConfig> forced = sweepConfigs();
    obs::RunReport forcedReport;
    const EnsembleStats stats =
        suiteAccuracyReportEnsemble(suite, forced, forcedReport);
    ::unsetenv("BPSIM_ENSEMBLE");
    EXPECT_TRUE(ensembleEnabled());

    EXPECT_EQ(stats.batchedCells, 0u);
    EXPECT_EQ(stats.groups, 0u);
    EXPECT_EQ(stats.serialCells, 6u * suite.size());
    EXPECT_EQ(forcedReport.toJson().dump(2),
              batchedReport.toJson().dump(2));
}

// ---------------------------------------------------------------
// Timing-ensemble replay (EnsembleTimingReplay + the suite engine).
// ---------------------------------------------------------------

void
expectSameSimResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.overridingBubbleCycles, b.overridingBubbleCycles);
    EXPECT_EQ(a.btbMissPenaltyCycles, b.btbMissPenaltyCycles);
    EXPECT_EQ(a.mispredictWaitCycles, b.mispredictWaitCycles);
    EXPECT_EQ(a.icacheStallCycles, b.icacheStallCycles);
    EXPECT_EQ(a.frontEndStallCycles, b.frontEndStallCycles);
    EXPECT_EQ(a.overrideStallCycles, b.overrideStallCycles);
    EXPECT_EQ(a.btbStallCycles, b.btbStallCycles);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.squashedUops, b.squashedUops);
    EXPECT_EQ(a.l1iMissRate, b.l1iMissRate);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.btbHitRate, b.btbHitRate);
}

/** A fetch predictor the grouping probe has never heard of. */
struct UnknownFetchPredictor final : FetchPredictor
{
    std::string name() const override { return "unknown"; }
    std::size_t storageBits() const override { return 8; }
    FetchPrediction predict(Addr) override { return {}; }
    void update(Addr, bool) override {}
};

TEST(TimingEnsemble, ProbeAcceptsHeteroRejectsUnknownAndLoneGroups)
{
    auto p0 = makeFetchPredictor(PredictorKind::Perceptron, 16 * 1024,
                                 DelayMode::Overriding);
    auto p1 = makeFetchPredictor(PredictorKind::Perceptron, 64 * 1024,
                                 DelayMode::Overriding);
    auto g0 = makeFetchPredictor(PredictorKind::GshareFast, 16 * 1024,
                                 DelayMode::Ideal);
    auto g1 = makeFetchPredictor(PredictorKind::GshareFast, 64 * 1024,
                                 DelayMode::Overriding);

    // Same wrapper + inner family across budgets batches...
    EXPECT_TRUE(ensembleTimingBatchable({p0.get(), p1.get()}));
    // ...including across delay modes that pick the same wrapper
    // (gshare.fast is single-cycle under both ideal and overriding,
    // which is how fig7 forms a cross-mode group)...
    EXPECT_TRUE(ensembleTimingBatchable({g0.get(), g1.get()}));
    // ...and across *different* kinds and wrapper classes: members
    // own private cores paused at side-effect-free boundaries, so a
    // heterogeneous group is as batchable as a uniform one (fig8's
    // four-kind sweep). Their keys differ — that is what marks the
    // group heterogeneous.
    EXPECT_TRUE(ensembleTimingBatchable({p0.get(), g0.get()}));
    EXPECT_NE(ensembleTimingGroupKey(*p0),
              ensembleTimingGroupKey(*g0));
    // Lone configs, empty groups and null members still refuse.
    EXPECT_FALSE(ensembleTimingBatchable({p0.get()}));
    EXPECT_FALSE(ensembleTimingBatchable({}));
    EXPECT_FALSE(
        ensembleTimingBatchable({p0.get(), nullptr}));

    // Protected inners batch too: the unwrap probe peels the stock
    // decorator chain down to the concrete table predictor, and the
    // wrapper's scrub/bombard schedule is per-member state the
    // member-major interleaving cannot perturb.
    robust::ProtectionConfig prot;
    prot.policy = robust::ProtectionPolicy::ParityInvalidate;
    auto r0 = makeProtectedFetchPredictor(
        PredictorKind::Gshare, 16 * 1024, DelayMode::Overriding, prot,
        robust::FaultPlan{});
    auto r1 = makeProtectedFetchPredictor(
        PredictorKind::Gshare, 64 * 1024, DelayMode::Overriding, prot,
        robust::FaultPlan{});
    EXPECT_FALSE(ensembleTimingGroupKey(*r0).empty());
    EXPECT_TRUE(ensembleTimingBatchable({r0.get(), r1.get()}));

    // Unknown user subclasses produce an empty key and refuse — as
    // a wrapper, and as a whole fetch predictor.
    UnknownFetchPredictor u0;
    UnknownFetchPredictor u1;
    EXPECT_TRUE(ensembleTimingGroupKey(u0).empty());
    EXPECT_FALSE(ensembleTimingBatchable({&u0, &u1}));
    EXPECT_FALSE(ensembleTimingBatchable({p0.get(), &u0}));
    auto su = std::make_unique<SingleCycleFetchPredictor>(
        std::make_unique<UnknownDirectionPredictor>());
    EXPECT_TRUE(ensembleTimingGroupKey(*su).empty());
    EXPECT_FALSE(ensembleTimingBatchable({su.get(), g0.get()}));
}

TEST(TimingEnsemble, ReplayMatchesSerialRunTiming)
{
    const TraceBuffer trace = suiteTrace();

    // A mixed-core group: cycle-skip on and off members replayed in
    // ONE batch must each match their own serial runTiming exactly
    // (the pause point is side-effect-free, so interleaving cannot
    // perturb a member's execution).
    CoreConfig skip;
    CoreConfig noskip;
    noskip.cycleSkip = false;
    auto b0 = makeFetchPredictor(PredictorKind::GshareFast, 64 * 1024,
                                 DelayMode::Ideal);
    auto b1 = makeFetchPredictor(PredictorKind::GshareFast, 64 * 1024,
                                 DelayMode::Ideal);
    ASSERT_TRUE(ensembleTimingBatchable({b0.get(), b1.get()}));

    std::vector<EnsembleTimingReplay::Member> members;
    members.push_back({skip, b0.get()});
    members.push_back({noskip, b1.get()});
    EnsembleTimingReplay replay(std::move(members));
    const std::vector<SimResult> rb = replay.run(trace);
    ASSERT_EQ(rb.size(), 2u);

    auto s0 = makeFetchPredictor(PredictorKind::GshareFast, 64 * 1024,
                                 DelayMode::Ideal);
    auto s1 = makeFetchPredictor(PredictorKind::GshareFast, 64 * 1024,
                                 DelayMode::Ideal);
    expectSameSimResult(rb[0], runTiming(skip, *s0, trace));
    expectSameSimResult(rb[1], runTiming(noskip, *s1, trace));
}

/** The fig7-slice config list used by the suite-level timing tests:
 *  a perceptron overriding family of three budgets, a gshare.fast
 *  family of two, and one protected cell — three distinct keys that
 *  now merge into one heterogeneous group. */
std::vector<TimingCellConfig>
timingSweepConfigs()
{
    std::vector<TimingCellConfig> configs;
    CoreConfig cfg;
    for (const std::size_t budget :
         {16u * 1024, 64u * 1024, 256u * 1024})
        configs.push_back({[budget] {
                               return makeFetchPredictor(
                                   PredictorKind::Perceptron, budget,
                                   DelayMode::Overriding);
                           },
                           kindName(PredictorKind::Perceptron),
                           delayModeName(DelayMode::Overriding),
                           budget,
                           cfg});
    for (const std::size_t budget : {16u * 1024, 64u * 1024})
        configs.push_back({[budget] {
                               return makeFetchPredictor(
                                   PredictorKind::GshareFast, budget,
                                   DelayMode::Ideal);
                           },
                           kindName(PredictorKind::GshareFast),
                           delayModeName(DelayMode::Ideal),
                           budget,
                           cfg});
    robust::ProtectionConfig prot;
    prot.policy = robust::ProtectionPolicy::ParityInvalidate;
    configs.push_back({[prot] {
                           return makeProtectedFetchPredictor(
                               PredictorKind::Gshare, 16 * 1024,
                               DelayMode::Overriding, prot,
                               robust::FaultPlan{});
                       },
                       "gshare.prot",
                       delayModeName(DelayMode::Overriding),
                       16 * 1024,
                       cfg});
    return configs;
}

/** Serial reference: one suiteTimingReport call per config, in list
 *  order, over the same suite. */
void
runTimingSerialReference(const SuiteTraces &suite,
                         std::vector<TimingCellConfig> &configs,
                         obs::RunReport &report,
                         obs::MetricRegistry *metrics,
                         obs::EventTracer *tracer = nullptr)
{
    for (TimingCellConfig &c : configs)
        c.results = suiteTimingReport(
            suite, c.cfg, c.make, &c.harmonicMeanIpc, report, c.name,
            c.mode, c.budgetBytes, metrics, tracer);
}

TEST(TimingEnsemble, SuiteReportMatchesSerialByteForByte)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> configs = timingSweepConfigs();
    obs::RunReport batchedReport;
    obs::MetricRegistry batchedMetrics;
    const EnsembleStats stats = suiteTimingReportEnsemble(
        suite, configs, batchedReport, &batchedMetrics);

    // All six configs — perceptron trio, gshare.fast pair AND the
    // protected cell — merge into one heterogeneous group: one trace
    // pass per workload for the whole sweep.
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.batchWidth, 6u);
    EXPECT_EQ(stats.batchedCells, 6u * suite.size());
    EXPECT_EQ(stats.serialCells, 0u);
    EXPECT_EQ(stats.heteroGroups, 1u);
    EXPECT_EQ(stats.heteroWidth, 6u);
    EXPECT_EQ(stats.heteroCells, 6u * suite.size());

    std::vector<TimingCellConfig> ref = timingSweepConfigs();
    obs::RunReport serialReport;
    obs::MetricRegistry serialMetrics;
    runTimingSerialReference(suite, ref, serialReport,
                             &serialMetrics);

    EXPECT_EQ(batchedReport.toJson().dump(2),
              serialReport.toJson().dump(2));
    EXPECT_EQ(metricsSansEnsemble(batchedMetrics),
              metricsSansEnsemble(serialMetrics));
    ASSERT_EQ(configs.size(), ref.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(ref[i].name + "/" + ref[i].mode + "@" +
                     std::to_string(ref[i].budgetBytes));
        EXPECT_EQ(configs[i].harmonicMeanIpc,
                  ref[i].harmonicMeanIpc);
        ASSERT_EQ(configs[i].results.size(), ref[i].results.size());
        for (std::size_t w = 0; w < ref[i].results.size(); ++w)
            expectSameSimResult(configs[i].results[w],
                                ref[i].results[w]);
    }

    EXPECT_EQ(
        batchedMetrics.gauge("core.ensemble.timing.batched_cells")
            .value(),
        static_cast<double>(stats.batchedCells));
    EXPECT_EQ(
        batchedMetrics.gauge("core.ensemble.timing.batch_width")
            .value(),
        static_cast<double>(stats.batchWidth));
    EXPECT_EQ(
        batchedMetrics.gauge("core.ensemble.timing.hetero_groups")
            .value(),
        static_cast<double>(stats.heteroGroups));
    EXPECT_EQ(
        batchedMetrics.gauge("core.ensemble.timing.hetero_width")
            .value(),
        static_cast<double>(stats.heteroWidth));
}

TEST(TimingEnsemble, PooledSuiteReportMatchesSerial)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> configs = timingSweepConfigs();
    obs::RunReport pooledReport;
    parallel::CellPool pool(4);
    suiteTimingReportEnsemble(suite, configs, pooledReport, nullptr,
                              nullptr, &pool);

    std::vector<TimingCellConfig> ref = timingSweepConfigs();
    obs::RunReport serialReport;
    runTimingSerialReference(suite, ref, serialReport, nullptr);

    // Rows are emitted config-major after the pool joins, so the
    // report is byte-identical regardless of worker count.
    EXPECT_EQ(pooledReport.toJson().dump(2),
              serialReport.toJson().dump(2));
    ASSERT_EQ(configs.size(), ref.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_EQ(configs[i].harmonicMeanIpc,
                  ref[i].harmonicMeanIpc);
}

TEST(TimingEnsemble, TracerForcesSerialIdenticalOutput)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> configs = timingSweepConfigs();
    obs::RunReport tracedReport;
    obs::EventTracer tracer(1 << 12);
    const EnsembleStats stats = suiteTimingReportEnsemble(
        suite, configs, tracedReport, nullptr, &tracer);

    // An ordered event stream cannot be interleaved: everything
    // must have run serially.
    EXPECT_EQ(stats.batchedCells, 0u);
    EXPECT_EQ(stats.groups, 0u);
    EXPECT_EQ(stats.serialCells, configs.size() * suite.size());

    std::vector<TimingCellConfig> ref = timingSweepConfigs();
    obs::RunReport serialReport;
    obs::EventTracer serialTracer(1 << 12);
    runTimingSerialReference(suite, ref, serialReport, nullptr,
                             &serialTracer);
    EXPECT_EQ(tracedReport.toJson().dump(2),
              serialReport.toJson().dump(2));
}

/** The fig8 shape: four distinct predictor kinds, one per config —
 *  under the old per-kind grouping none of these batched. */
std::vector<TimingCellConfig>
fig8Configs()
{
    struct Row
    {
        PredictorKind kind;
        std::size_t budget;
        DelayMode mode;
    };
    const std::vector<Row> rows = {
        {PredictorKind::MultiComponent, 53 * 1024,
         DelayMode::Overriding},
        {PredictorKind::Gskew, 64 * 1024, DelayMode::Overriding},
        {PredictorKind::Perceptron, 64 * 1024,
         DelayMode::Overriding},
        {PredictorKind::GshareFast, 64 * 1024, DelayMode::Ideal},
    };
    std::vector<TimingCellConfig> configs;
    CoreConfig cfg;
    for (const Row &r : rows)
        configs.push_back({[r] {
                               return makeFetchPredictor(
                                   r.kind, r.budget, r.mode);
                           },
                           kindName(r.kind),
                           delayModeName(r.mode),
                           r.budget,
                           cfg});
    return configs;
}

TEST(TimingEnsemble, HeteroFig8GroupMatchesSerialByteForByte)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> configs = fig8Configs();
    obs::RunReport batchedReport;
    obs::MetricRegistry batchedMetrics;
    const EnsembleStats stats = suiteTimingReportEnsemble(
        suite, configs, batchedReport, &batchedMetrics);

    // Four distinct kinds form ONE heterogeneous group.
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.heteroGroups, 1u);
    EXPECT_EQ(stats.batchWidth, 4u);
    EXPECT_EQ(stats.heteroWidth, 4u);
    EXPECT_EQ(stats.batchedCells, 4u * suite.size());
    EXPECT_EQ(stats.serialCells, 0u);
    EXPECT_GE(
        batchedMetrics.gauge("core.ensemble.timing.hetero_groups")
            .value(),
        1.0);

    std::vector<TimingCellConfig> ref = fig8Configs();
    obs::RunReport serialReport;
    obs::MetricRegistry serialMetrics;
    runTimingSerialReference(suite, ref, serialReport,
                             &serialMetrics);

    EXPECT_EQ(batchedReport.toJson().dump(2),
              serialReport.toJson().dump(2));
    EXPECT_EQ(metricsSansEnsemble(batchedMetrics),
              metricsSansEnsemble(serialMetrics));
    ASSERT_EQ(configs.size(), ref.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        SCOPED_TRACE(ref[i].name);
        EXPECT_EQ(configs[i].harmonicMeanIpc,
                  ref[i].harmonicMeanIpc);
        ASSERT_EQ(configs[i].results.size(), ref[i].results.size());
        for (std::size_t w = 0; w < ref[i].results.size(); ++w)
            expectSameSimResult(configs[i].results[w],
                                ref[i].results[w]);
    }
}

TEST(TimingEnsemble, PooledHeteroFig8GroupMatchesSerial)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> configs = fig8Configs();
    obs::RunReport pooledReport;
    parallel::CellPool pool(4);
    const EnsembleStats stats = suiteTimingReportEnsemble(
        suite, configs, pooledReport, nullptr, nullptr, &pool);
    EXPECT_EQ(stats.heteroGroups, 1u);

    std::vector<TimingCellConfig> ref = fig8Configs();
    obs::RunReport serialReport;
    runTimingSerialReference(suite, ref, serialReport, nullptr);

    EXPECT_EQ(pooledReport.toJson().dump(2),
              serialReport.toJson().dump(2));
}

TEST(EnsembleReplay, MixedWrapperSuiteReportMatchesSerial)
{
    // Protected and fault-injected gshare variants next to a bare
    // one: all three share the gshare inner type, so the suite
    // engine forms one mixed-wrapper group — the protection-surface
    // sweep shape.
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());
    robust::ProtectionConfig prot;
    prot.policy = robust::ProtectionPolicy::SecdedCorrect;
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-4;
    plan.intervalBranches = 256;

    const auto build = [&] {
        std::vector<AccuracyCellConfig> configs;
        AccuracyCellConfig bare;
        bare.make = [] {
            return makePredictor(PredictorKind::Gshare, 16 * 1024);
        };
        bare.name = "gshare";
        bare.budgetBytes = 16 * 1024;
        configs.push_back(std::move(bare));
        AccuracyCellConfig prot_c;
        prot_c.make = [prot, plan] {
            return makeProtectedPredictor(PredictorKind::Gshare,
                                          16 * 1024, prot, plan);
        };
        prot_c.name = "gshare.secded";
        prot_c.budgetBytes = 16 * 1024;
        configs.push_back(std::move(prot_c));
        AccuracyCellConfig fault;
        fault.make = [plan] {
            return std::make_unique<
                robust::FaultInjectingPredictor>(
                makePredictor(PredictorKind::Gshare, 16 * 1024),
                plan);
        };
        fault.name = "gshare.fault";
        fault.budgetBytes = 16 * 1024;
        configs.push_back(std::move(fault));
        return configs;
    };

    std::vector<AccuracyCellConfig> configs = build();
    obs::RunReport batchedReport;
    obs::MetricRegistry batchedMetrics;
    const EnsembleStats stats = suiteAccuracyReportEnsemble(
        suite, configs, batchedReport, &batchedMetrics);
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.batchWidth, 3u);
    EXPECT_EQ(stats.heteroGroups, 1u);
    EXPECT_EQ(stats.serialCells, 0u);

    std::vector<AccuracyCellConfig> ref = build();
    obs::RunReport serialReport;
    obs::MetricRegistry serialMetrics;
    for (AccuracyCellConfig &c : ref)
        c.results = suiteAccuracyReport(
            suite, c.make, &c.meanPercent, serialReport, c.name,
            c.budgetBytes, &serialMetrics);

    EXPECT_EQ(batchedReport.toJson().dump(2),
              serialReport.toJson().dump(2));
    EXPECT_EQ(metricsSansEnsemble(batchedMetrics),
              metricsSansEnsemble(serialMetrics));
}

TEST(EnsembleReplay, PerWorkloadFactoryMatchesEscapeHatch)
{
    // makeForWorkload lets the soft-error studies seed each cell's
    // fault plan by workload index; the ensemble path must produce
    // the same rows as the escape-hatch serial path with identical
    // per-cell seeds.
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());
    const auto build = [] {
        std::vector<AccuracyCellConfig> configs;
        for (const std::size_t budget : {4096u, 16384u}) {
            AccuracyCellConfig c;
            c.makeForWorkload = [budget](std::size_t w) {
                robust::FaultPlan plan;
                plan.upsetRatePerBit = 1e-4;
                plan.intervalBranches = 512;
                plan.seed = 1000 + 17 * w;
                return std::unique_ptr<DirectionPredictor>(
                    std::make_unique<
                        robust::FaultInjectingPredictor>(
                        makePredictor(PredictorKind::Gshare,
                                      budget),
                        plan));
            };
            c.name = "gshare.fault";
            c.budgetBytes = budget;
            configs.push_back(std::move(c));
        }
        return configs;
    };

    std::vector<AccuracyCellConfig> batched = build();
    obs::RunReport batchedReport;
    const EnsembleStats stats =
        suiteAccuracyReportEnsemble(suite, batched, batchedReport);
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.batchedCells, 2u * suite.size());

    ASSERT_EQ(::setenv("BPSIM_ENSEMBLE", "0", 1), 0);
    std::vector<AccuracyCellConfig> forced = build();
    obs::RunReport forcedReport;
    suiteAccuracyReportEnsemble(suite, forced, forcedReport);
    ::unsetenv("BPSIM_ENSEMBLE");

    EXPECT_EQ(batchedReport.toJson().dump(2),
              forcedReport.toJson().dump(2));
}

TEST(TimingEnsemble, EnvEscapeForcesSerialIdenticalOutput)
{
    const SuiteTraces suite(4000, 13, nullptr, TraceCache());

    std::vector<TimingCellConfig> batched = timingSweepConfigs();
    obs::RunReport batchedReport;
    suiteTimingReportEnsemble(suite, batched, batchedReport);

    ASSERT_EQ(::setenv("BPSIM_ENSEMBLE", "0", 1), 0);
    std::vector<TimingCellConfig> forced = timingSweepConfigs();
    obs::RunReport forcedReport;
    const EnsembleStats stats =
        suiteTimingReportEnsemble(suite, forced, forcedReport);
    ::unsetenv("BPSIM_ENSEMBLE");

    EXPECT_EQ(stats.batchedCells, 0u);
    EXPECT_EQ(stats.groups, 0u);
    EXPECT_EQ(stats.serialCells, forced.size() * suite.size());
    EXPECT_EQ(forcedReport.toJson().dump(2),
              batchedReport.toJson().dump(2));
}

} // namespace
} // namespace bpsim
