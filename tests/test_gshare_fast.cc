/** @file Tests for the gshare.fast functional model. */

#include "predictors/gshare_fast.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/gshare.hh"

namespace bpsim {
namespace {

TEST(GshareFast, GeometryDerivedFromEntries)
{
    GshareFastPredictor p(1 << 16, 2);
    EXPECT_EQ(p.historyBits(), 16u);
    EXPECT_EQ(p.rowSelectBits(), 9u);
    EXPECT_EQ(p.rows(), (1u << 16) >> 9);
    EXPECT_EQ(p.storageBits(), (1u << 16) * 2 + 16u);
}

TEST(GshareFast, SelectWidensWithLatencyPerSection331)
{
    // Buffer >= 2^latency entries: a 10-branch row lag must widen
    // the select beyond the default 9 bits.
    GshareFastPredictor p(1 << 21, 10);
    EXPECT_EQ(p.rowSelectBits(), 10u);
}

TEST(GshareFast, ZeroLagMatchesGshareOnSmallTables)
{
    // With entries <= 2^9 the whole index is the select, so
    // gshare.fast with zero lag indexes exactly like gshare.
    GshareFastPredictor fast(512, 0);
    GsharePredictor ref(512);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x4000 + (rng.next() % 64) * 16;
        const bool taken = rng.nextBool(0.7);
        EXPECT_EQ(fast.predict(pc), ref.predict(pc)) << "step " << i;
        fast.update(pc, taken);
        ref.update(pc, taken);
    }
}

TEST(GshareFast, LearnsConstantAndPeriodicStreams)
{
    GshareFastPredictor p(1 << 14, 3);
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 20000; ++i) {
        const bool taken = i % 4 != 3;
        const bool pred = p.predict(0x4000);
        p.update(0x4000, taken);
        if (i > 10000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.02);
}

TEST(GshareFast, UpdateDelayDefersTraining)
{
    // With a huge update delay, the PHT never trains within the run:
    // all-taken stream keeps mispredicting (counters stay at the
    // weakly-not-taken reset value).
    GshareFastPredictor delayed(1 << 12, 0, 1u << 30);
    std::size_t wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool pred = delayed.predict(0x4000);
        delayed.update(0x4000, true);
        wrong += pred != true;
    }
    EXPECT_EQ(wrong, 1000u);

    // Zero delay trains immediately.
    GshareFastPredictor immediate(1 << 12, 0, 0);
    wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool pred = immediate.predict(0x4000);
        immediate.update(0x4000, true);
        wrong += pred != true;
    }
    EXPECT_LT(wrong, 40u) << "history warm-up only";
}

/** Property: modest update delay barely hurts accuracy — the paper's
 *  Section 3.2 claim (64-branch delay costs a few hundredths of a
 *  percent). */
TEST(GshareFast, SixtyFourBranchDelayCostsAlmostNothing)
{
    auto run = [](unsigned delay) {
        GshareFastPredictor p(1 << 15, 3, delay);
        Rng rng(11);
        std::size_t wrong = 0;
        std::vector<bool> hist(8, false);
        for (std::size_t i = 0; i < 60000; ++i) {
            const Addr pc = 0x4000 + (i % 16) * 16;
            // Mildly structured stream: outcome correlates with
            // history, plus noise.
            const bool taken = rng.nextBool(0.1)
                                   ? rng.nextBool(0.5)
                                   : hist[hist.size() - 4];
            hist.push_back(taken);
            const bool pred = p.predict(pc);
            p.update(pc, taken);
            wrong += pred != taken;
        }
        return static_cast<double>(wrong) / 60000.0;
    };
    const double base = run(0);
    const double slow = run(64);
    EXPECT_LT(slow - base, 0.01)
        << "64-deep update queue should cost well under 1% absolute";
}

/** Property sweep: storage and geometry consistent across sizes. */
class GshareFastSizeTest
    : public ::testing::TestWithParam<unsigned> // log2 entries
{
};

TEST_P(GshareFastSizeTest, RowsTimesSelectEqualsEntries)
{
    const std::size_t entries = std::size_t{1} << GetParam();
    GshareFastPredictor p(entries, 3);
    EXPECT_EQ(p.rows() << p.rowSelectBits(), entries);
    EXPECT_EQ(p.historyBits(), GetParam());
}

TEST_P(GshareFastSizeTest, PredictUpdateContractHolds)
{
    const std::size_t entries = std::size_t{1} << GetParam();
    GshareFastPredictor p(entries, 3);
    Rng rng(17);
    for (int i = 0; i < 2000; ++i) {
        const Addr pc = (rng.next() % 512) * 16;
        p.predict(pc);
        p.update(pc, rng.nextBool(0.6));
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Sizes, GshareFastSizeTest,
                         ::testing::Values(9u, 10u, 13u, 16u, 18u,
                                           21u));

} // namespace
} // namespace bpsim
