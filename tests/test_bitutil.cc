/** @file Unit and property tests for common/bitutil.hh. */

#include "common/bitutil.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(BitUtil, LoMaskBasics)
{
    EXPECT_EQ(loMask(0), 0u);
    EXPECT_EQ(loMask(1), 1u);
    EXPECT_EQ(loMask(8), 0xffu);
    EXPECT_EQ(loMask(63), 0x7fffffffffffffffULL);
    EXPECT_EQ(loMask(64), ~std::uint64_t{0});
    EXPECT_EQ(loMask(200), ~std::uint64_t{0});
}

TEST(BitUtil, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xff, 3, 3), 1u);
}

TEST(BitUtil, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(std::uint64_t{1} << 40));
    EXPECT_FALSE(isPowerOfTwo((std::uint64_t{1} << 40) + 1));
}

TEST(BitUtil, Log2Functions)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, NextPowerOfTwo)
{
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(4), 4u);
    EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
}

TEST(BitUtil, FoldBitsPreservesLowWidth)
{
    // Folding an n-bit value to n bits is the identity.
    EXPECT_EQ(foldBits(0xabcd, 16), 0xabcdu);
    // Folding to zero bits is zero.
    EXPECT_EQ(foldBits(0xabcd, 0), 0u);
}

/** Property sweep: folded values stay within the output width and
 *  every input bit participates (flipping any bit changes the fold
 *  unless it cancels against a sibling — check width only). */
class FoldWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FoldWidthTest, OutputWithinWidth)
{
    const unsigned width = GetParam();
    std::uint64_t v = 0x123456789abcdef0ULL;
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t f = foldBits(v, width);
        EXPECT_EQ(f & ~loMask(width), 0u);
        v = (v << 1) | (v >> 63);
    }
}

TEST_P(FoldWidthTest, SingleBitLandsSomewhere)
{
    const unsigned width = GetParam();
    for (unsigned pos = 0; pos < 64; ++pos) {
        const std::uint64_t f = foldBits(std::uint64_t{1} << pos, width);
        EXPECT_NE(f, 0u) << "bit " << pos << " vanished";
        EXPECT_EQ(f, std::uint64_t{1} << (pos % width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FoldWidthTest,
                         ::testing::Values(1u, 3u, 8u, 9u, 16u, 21u,
                                           32u, 63u));

} // namespace
} // namespace bpsim
