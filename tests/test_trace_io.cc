/** @file Tests for binary trace file round-tripping and reader
 *  hardening against truncated or corrupted files. */

#include "trace/trace_io.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>


#include "common/rng.hh"
#include "robust/trace_fault.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripsAWorkloadTrace)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer original = generateTrace(*w, 40000, 7);
    const std::string path = tempPath("crafty.bpt");

    writeTrace(original, path);
    const TraceBuffer loaded = readTrace(path);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.condBranches(), original.condBranches());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(loaded[i].pc, original[i].pc) << "op " << i;
        ASSERT_EQ(loaded[i].extra, original[i].extra) << "op " << i;
        ASSERT_EQ(loaded[i].cls, original[i].cls) << "op " << i;
        ASSERT_EQ(loaded[i].taken, original[i].taken) << "op " << i;
        ASSERT_EQ(loaded[i].dst, original[i].dst) << "op " << i;
        ASSERT_EQ(loaded[i].srcA, original[i].srcA) << "op " << i;
        ASSERT_EQ(loaded[i].srcB, original[i].srcB) << "op " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.bpt");
    writeTrace(TraceBuffer{}, path);
    const TraceBuffer loaded = readTrace(path);
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTrace("/nonexistent/dir/trace.bpt"),
                 TraceIoError);
}

TEST(TraceIo, RejectsForeignFiles)
{
    const std::string path = tempPath("garbage.bpt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file at all, not even close",
               f);
    std::fclose(f);
    EXPECT_THROW(readTrace(path), TraceIoError);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedRecords)
{
    const auto w = makeWorkload("254.gap");
    const TraceBuffer original = generateTrace(*w, 1000, 1);
    const std::string path = tempPath("trunc.bpt");
    writeTrace(original, path);

    // Chop the file in half (keeping the header).
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size / 2));

    EXPECT_THROW(readTrace(path), TraceIoError);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsOversizedRecordCount)
{
    // A corrupt header count must be a clean TraceIoError, not a
    // multi-gigabyte reserve.
    const auto w = makeWorkload("254.gap");
    const TraceBuffer original = generateTrace(*w, 200, 1);
    const std::string path = tempPath("hugecount.bpt");
    writeTrace(original, path);

    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(0, std::fseek(f, 16, SEEK_SET));
    const std::uint8_t huge[8] = {0xff, 0xff, 0xff, 0xff,
                                  0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(sizeof(huge), std::fwrite(huge, 1, sizeof(huge), f));
    std::fclose(f);

    EXPECT_THROW(readTrace(path), TraceIoError);
    std::remove(path.c_str());
}

TEST(TraceIo, FuzzTruncationAtEveryBoundary)
{
    // Any prefix of a valid trace file must produce TraceIoError —
    // never a crash, hang or over-read.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 40, 11);
    const std::string path = tempPath("fuzz_trunc.bpt");
    writeTrace(original, path);

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(size, 24);

    for (long cut = 0; cut < size; ++cut) {
        writeTrace(original, path);
        ASSERT_EQ(0, truncate(path.c_str(), cut));
        EXPECT_THROW(readTrace(path), TraceIoError)
            << "truncated to " << cut << " of " << size << " bytes";
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// v2 (compressed) format

/** Field-by-field equality with gtest context on the failing op. */
void
expectTracesEqual(const TraceBuffer &a, const TraceBuffer &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
        ASSERT_EQ(a[i].extra, b[i].extra) << "op " << i;
        ASSERT_EQ(a[i].cls, b[i].cls) << "op " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "op " << i;
        ASSERT_EQ(a[i].dst, b[i].dst) << "op " << i;
        ASSERT_EQ(a[i].srcA, b[i].srcA) << "op " << i;
        ASSERT_EQ(a[i].srcB, b[i].srcB) << "op " << i;
    }
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(TraceIoCompressed, RoundTripsBitIdentically)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer original = generateTrace(*w, 40000, 7);
    const std::string path = tempPath("crafty_v2.bpt");
    const std::string path2 = tempPath("crafty_v2b.bpt");

    writeTraceCompressed(original, path);
    const TraceBuffer loaded = readTrace(path);
    expectTracesEqual(original, loaded);

    // Encoding is canonical: re-encoding the decoded trace must
    // reproduce the file byte for byte (the racing-writers guarantee
    // in trace_cache rests on this).
    writeTraceCompressed(loaded, path2);
    EXPECT_EQ(slurp(path), slurp(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(TraceIoCompressed, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty_v2.bpt");
    writeTraceCompressed(TraceBuffer{}, path);
    const TraceBuffer loaded = readTrace(path);
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceIoCompressed, ShrinksWorkloadTraceAtLeast2x)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer t = generateTrace(*w, 50000, 42);
    const std::string raw = tempPath("gcc_v1.bpt");
    const std::string packed = tempPath("gcc_v2.bpt");
    writeTrace(t, raw);
    writeTraceCompressed(t, packed);
    const auto rawSize = slurp(raw).size();
    const auto packedSize = slurp(packed).size();
    EXPECT_GE(rawSize, 2 * packedSize)
        << "raw " << rawSize << " vs compressed " << packedSize;
    std::remove(raw.c_str());
    std::remove(packed.c_str());
}

TEST(TraceIoCompressed, FuzzTruncationAtEveryBoundary)
{
    // Any prefix of a valid compressed file must produce
    // TraceIoError — the checksum trailer or a structural check
    // catches every cut.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 40, 11);
    const std::string path = tempPath("fuzz_trunc_v2.bpt");
    writeTraceCompressed(original, path);

    const long size = static_cast<long>(slurp(path).size());
    ASSERT_GT(size, 32);
    for (long cut = 0; cut < size; ++cut) {
        writeTraceCompressed(original, path);
        ASSERT_EQ(0, truncate(path.c_str(), cut));
        EXPECT_THROW(readTrace(path), TraceIoError)
            << "truncated to " << cut << " of " << size << " bytes";
    }
    std::remove(path.c_str());
}

TEST(TraceIoCompressed, FuzzSeededBitFlipsNeverCorruptData)
{
    // Stronger property than v1: the payload is checksummed, so a
    // flipped bit either throws TraceIoError or (flips in the
    // header's ignored reserved field) decodes the *exact* original
    // trace. Silently returning different data is the one forbidden
    // outcome.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 300, 13);
    const std::string path = tempPath("fuzz_flip_v2.bpt");

    Rng rng(0xf1b2);
    std::size_t parsed = 0, rejected = 0;
    for (int round = 0; round < 200; ++round) {
        writeTraceCompressed(original, path);
        ASSERT_EQ(1u, robust::corruptFileBytes(path, 1, rng));
        try {
            const TraceBuffer t = readTrace(path);
            expectTracesEqual(original, t);
            ++parsed;
        } catch (const TraceIoError &) {
            ++rejected;
        }
    }
    // Nearly every flip lands in checksummed payload or a validated
    // header field; rejection must dominate.
    EXPECT_GT(rejected, 150u);
    EXPECT_EQ(parsed + rejected, 200u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// v3 (columnar, mmap-able) format

TEST(TraceIoColumnar, RoundTripsBitIdentically)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer original = generateTrace(*w, 40000, 7);
    const std::string path = tempPath("crafty_v3.bpt");
    const std::string path2 = tempPath("crafty_v3b.bpt");

    writeTraceV3(original, path);
    const TraceBuffer loaded = readTrace(path);
    expectTracesEqual(original, loaded);
    EXPECT_EQ(loaded.condBranches(), original.condBranches());

    // Canonical encoding, same contract as v2: re-encoding the
    // decoded trace reproduces the file byte for byte.
    writeTraceV3(loaded, path2);
    EXPECT_EQ(slurp(path), slurp(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(TraceIoColumnar, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty_v3.bpt");
    writeTraceV3(TraceBuffer{}, path);
    const TraceBuffer loaded = readTrace(path);
    EXPECT_TRUE(loaded.empty());
    EXPECT_EQ(loaded.condBranches(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIoColumnar, ServesBranchViewWithoutDecodingOps)
{
    // The whole point of v3: accuracy replay walks branchView()
    // straight out of the mapped file, never decoding the op stream.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 20000, 3);
    const std::string path = tempPath("zerocopy_v3.bpt");
    writeTraceV3(original, path);

    const TraceBuffer loaded = readTrace(path);
    EXPECT_FALSE(loaded.opsMaterialized());
    EXPECT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.condBranches(), original.condBranches());

    const BranchSpan a = original.branchView();
    const BranchSpan b = loaded.branchView();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.pc(i), b.pc(i)) << "branch " << i;
        ASSERT_EQ(a.taken(i), b.taken(i)) << "branch " << i;
    }
    // Replaying the branch columns must not have forced a decode.
    EXPECT_FALSE(loaded.opsMaterialized());

    // First op access decodes lazily, and correctly.
    EXPECT_EQ(loaded[0].pc, original[0].pc);
    EXPECT_TRUE(loaded.opsMaterialized());
    std::remove(path.c_str());
}

TEST(TraceIoColumnar, MutationDetachesFromMapping)
{
    // Fault injection rewrites ops in place; on a mapped buffer that
    // must copy out of the file, not write through it.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 2000, 5);
    const std::string path = tempPath("mutate_v3.bpt");
    writeTraceV3(original, path);

    TraceBuffer loaded = readTrace(path);
    std::size_t firstBranch = 0;
    while (loaded[firstBranch].cls != InstClass::CondBranch)
        ++firstBranch;
    MicroOp &op = loaded.mutableOp(firstBranch);
    op.taken = !op.taken;
    loaded.rebuildBranchView();

    EXPECT_EQ(loaded.branchView().taken(0), op.taken);
    // The file itself is untouched.
    const TraceBuffer reloaded = readTrace(path);
    expectTracesEqual(original, reloaded);
    std::remove(path.c_str());
}

TEST(TraceIoColumnar, FuzzTruncationAtEveryBoundary)
{
    // Any prefix of a valid columnar file must produce TraceIoError:
    // the directory checksum, recomputed section layout, exact
    // file-end check and per-block sums leave no unvalidated byte.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 40, 11);
    const std::string path = tempPath("fuzz_trunc_v3.bpt");
    writeTraceV3(original, path);

    const long size = static_cast<long>(slurp(path).size());
    ASSERT_GT(size, 192);
    for (long cut = 0; cut < size; ++cut) {
        writeTraceV3(original, path);
        ASSERT_EQ(0, truncate(path.c_str(), cut));
        EXPECT_THROW(readTrace(path), TraceIoError)
            << "truncated to " << cut << " of " << size << " bytes";
    }
    std::remove(path.c_str());
}

TEST(TraceIoColumnar, FuzzSeededBitFlipsNeverCorruptData)
{
    // Same contract as v2: a flipped bit either throws TraceIoError
    // or decodes the exact original trace — silently different data
    // is the one forbidden outcome. v3 checksums every region
    // (directory FNV, per-block payload sums, zero-checked padding),
    // so rejection should be near-total.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 300, 13);
    const std::string path = tempPath("fuzz_flip_v3.bpt");

    Rng rng(0xf1b3);
    std::size_t parsed = 0, rejected = 0;
    for (int round = 0; round < 200; ++round) {
        writeTraceV3(original, path);
        ASSERT_EQ(1u, robust::corruptFileBytes(path, 1, rng));
        try {
            const TraceBuffer t = readTrace(path);
            expectTracesEqual(original, t);
            // Branch columns are part of the contract too.
            const BranchSpan a = original.branchView();
            const BranchSpan b = t.branchView();
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i) {
                ASSERT_EQ(a.pc(i), b.pc(i));
                ASSERT_EQ(a.taken(i), b.taken(i));
            }
            ++parsed;
        } catch (const TraceIoError &) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 150u);
    EXPECT_EQ(parsed + rejected, 200u);
    std::remove(path.c_str());
}

TEST(TraceIo, FuzzSeededBitFlips)
{
    // Seeded single-bit corruption anywhere in the file: the reader
    // must either return a (possibly different) trace or throw
    // TraceIoError. Undefined behaviour — crashes, over-reads — is
    // what ASan/UBSan CI runs of this test would catch.
    const auto w = makeWorkload("164.gzip");
    const TraceBuffer original = generateTrace(*w, 300, 13);
    const std::string path = tempPath("fuzz_flip.bpt");

    Rng rng(0xf1b);
    std::size_t parsed = 0, rejected = 0;
    for (int round = 0; round < 200; ++round) {
        writeTrace(original, path);
        ASSERT_EQ(1u, robust::corruptFileBytes(path, 1, rng));
        try {
            const TraceBuffer t = readTrace(path);
            EXPECT_LE(t.size(), original.size());
            ++parsed;
        } catch (const TraceIoError &) {
            ++rejected;
        }
    }
    // Both outcomes must occur: flips in payload usually parse,
    // flips in the header/count/class bytes must be rejected.
    EXPECT_GT(parsed, 0u);
    EXPECT_GT(rejected, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace bpsim
