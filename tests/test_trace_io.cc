/** @file Tests for binary trace file round-tripping. */

#include "trace/trace_io.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>


#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceIo, RoundTripsAWorkloadTrace)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer original = generateTrace(*w, 40000, 7);
    const std::string path = tempPath("crafty.bpt");

    writeTrace(original, path);
    const TraceBuffer loaded = readTrace(path);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.condBranches(), original.condBranches());
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(loaded[i].pc, original[i].pc) << "op " << i;
        ASSERT_EQ(loaded[i].extra, original[i].extra) << "op " << i;
        ASSERT_EQ(loaded[i].cls, original[i].cls) << "op " << i;
        ASSERT_EQ(loaded[i].taken, original[i].taken) << "op " << i;
        ASSERT_EQ(loaded[i].dst, original[i].dst) << "op " << i;
        ASSERT_EQ(loaded[i].srcA, original[i].srcA) << "op " << i;
        ASSERT_EQ(loaded[i].srcB, original[i].srcB) << "op " << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("empty.bpt");
    writeTrace(TraceBuffer{}, path);
    const TraceBuffer loaded = readTrace(path);
    EXPECT_TRUE(loaded.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTrace("/nonexistent/dir/trace.bpt"),
                 TraceIoError);
}

TEST(TraceIo, RejectsForeignFiles)
{
    const std::string path = tempPath("garbage.bpt");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file at all, not even close",
               f);
    std::fclose(f);
    EXPECT_THROW(readTrace(path), TraceIoError);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsTruncatedRecords)
{
    const auto w = makeWorkload("254.gap");
    const TraceBuffer original = generateTrace(*w, 1000, 1);
    const std::string path = tempPath("trunc.bpt");
    writeTrace(original, path);

    // Chop the file in half (keeping the header).
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size / 2));

    EXPECT_THROW(readTrace(path), TraceIoError);
    std::remove(path.c_str());
}

} // namespace
} // namespace bpsim
