/** @file Tests for the out-of-order timing model. */

#include "sim/ooo_core.hh"

#include <gtest/gtest.h>

#include <memory>

#include "predictors/static_pred.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {
namespace {

/** Build a trace of @p n independent single-cycle ALU ops. */
TraceBuffer
independentAlus(std::size_t n)
{
    TraceBuffer t;
    for (std::size_t i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x1000 + (i % 8) * 4;
        op.cls = InstClass::IntAlu;
        op.dst = static_cast<std::uint8_t>(1 + i % 60);
        t.push(op);
    }
    return t;
}

/** A serial dependence chain: each op reads the previous one's dst. */
TraceBuffer
serialChain(std::size_t n)
{
    TraceBuffer t;
    for (std::size_t i = 0; i < n; ++i) {
        MicroOp op;
        op.pc = 0x1000 + (i % 8) * 4;
        op.cls = InstClass::IntAlu;
        op.dst = static_cast<std::uint8_t>(1 + i % 2);
        op.srcA = static_cast<std::uint8_t>(1 + (i + 1) % 2);
        t.push(op);
    }
    return t;
}

/** Alternate k ALU ops with one conditional branch of fixed outcome
 *  pattern; @p taken_fn gives the outcome per branch. */
TraceBuffer
branchy(std::size_t branches, unsigned gap,
        const std::function<bool(std::size_t)> &taken_fn)
{
    TraceBuffer t;
    for (std::size_t b = 0; b < branches; ++b) {
        for (unsigned i = 0; i < gap; ++i) {
            MicroOp op;
            op.cls = InstClass::IntAlu;
            op.pc = 0x1000;
            op.dst = static_cast<std::uint8_t>(1 + i % 50);
            t.push(op);
        }
        MicroOp br;
        br.cls = InstClass::CondBranch;
        br.pc = 0x2000;
        br.taken = taken_fn(b);
        br.extra = 0x3000;
        t.push(br);
    }
    return t;
}

SimResult
simulate(const TraceBuffer &t, std::unique_ptr<DirectionPredictor> p,
         CoreConfig cfg = CoreConfig{})
{
    SingleCycleFetchPredictor fp(std::move(p));
    OooCore core(cfg, fp);
    return core.run(t);
}

TEST(OooCore, CommitsEverything)
{
    const auto t = independentAlus(5000);
    const auto r =
        simulate(t, std::make_unique<StaticPredictor>(true));
    EXPECT_EQ(r.instructions, 5000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(OooCore, IpcBoundedByIssueWidth)
{
    const auto t = independentAlus(20000);
    const auto r =
        simulate(t, std::make_unique<StaticPredictor>(true));
    EXPECT_LE(r.ipc(), 8.0);
    EXPECT_GT(r.ipc(), 4.0)
        << "independent ALUs should sustain most of the width";
}

TEST(OooCore, SerialChainLimitsIpcToOne)
{
    const auto t = serialChain(20000);
    const auto r =
        simulate(t, std::make_unique<StaticPredictor>(true));
    EXPECT_LE(r.ipc(), 1.05);
    EXPECT_GT(r.ipc(), 0.8);
}

TEST(OooCore, MispredictionsCostPipelineDepth)
{
    // All-taken branches: a never-taken predictor mispredicts every
    // branch, an always-taken predictor none.
    const auto t = branchy(2000, 6, [](auto) { return true; });
    const auto good =
        simulate(t, std::make_unique<StaticPredictor>(true));
    const auto bad =
        simulate(t, std::make_unique<StaticPredictor>(false));
    EXPECT_EQ(good.mispredictions, 0u);
    EXPECT_EQ(bad.mispredictions, 2000u);
    EXPECT_GT(good.ipc(), 2.0 * bad.ipc());
    // Penalty per misprediction is on the order of the front-end
    // depth (Table 1's 20-deep pipe).
    const double penalty =
        static_cast<double>(bad.cycles - good.cycles) / 2000.0;
    EXPECT_GT(penalty, 10.0);
    EXPECT_LT(penalty, 40.0);
}

TEST(OooCore, DeeperFrontEndHurtsMispredictionsMore)
{
    const auto t = branchy(2000, 6, [](auto b) { return b % 2 == 0; });
    CoreConfig shallow;
    shallow.frontEndDepth = 6;
    CoreConfig deep;
    deep.frontEndDepth = 25;
    const auto rs = simulate(
        t, std::make_unique<StaticPredictor>(true), shallow);
    const auto rd =
        simulate(t, std::make_unique<StaticPredictor>(true), deep);
    EXPECT_GT(rs.ipc(), rd.ipc());
}

TEST(OooCore, OverridingBubblesReduceIpc)
{
    const auto t = branchy(4000, 6, [](auto) { return true; });
    CoreConfig cfg;
    // Ideal single-cycle predictor.
    auto ideal = simulate(t, std::make_unique<StaticPredictor>(true));
    // Same final predictions, but disagreeing quick predictor costs
    // 8 bubbles per branch.
    OverridingFetchPredictor over(
        std::make_unique<StaticPredictor>(false),
        std::make_unique<StaticPredictor>(true), 8);
    OooCore core(cfg, over);
    const auto r = core.run(t);
    EXPECT_EQ(r.mispredictions, 0u);
    EXPECT_GT(r.overridingBubbleCycles, 0u);
    EXPECT_LT(r.ipc(), ideal.ipc());
}

TEST(OooCore, LoadMissesThrottleIpc)
{
    // Serial pointer chase over a range far larger than L2.
    TraceBuffer t;
    for (std::size_t i = 0; i < 20000; ++i) {
        MicroOp op;
        op.cls = InstClass::Load;
        op.pc = 0x1000;
        op.extra = (i * 524287) % (512u * 1024 * 1024);
        op.dst = 1;
        op.srcA = 1;
        t.push(op);
    }
    const auto r =
        simulate(t, std::make_unique<StaticPredictor>(true));
    EXPECT_LT(r.ipc(), 0.05);
    EXPECT_GT(r.l1dMissRate, 0.9);
}

TEST(OooCore, BtbMissPenaltyAccounted)
{
    // Taken branches at many distinct pcs blow out a tiny BTB.
    TraceBuffer t;
    for (std::size_t i = 0; i < 4000; ++i) {
        MicroOp br;
        br.cls = InstClass::CondBranch;
        br.pc = 0x1000 + (i % 1024) * 16;
        br.taken = true;
        br.extra = br.pc + 64;
        t.push(br);
    }
    CoreConfig small;
    small.btbEntries = 16;
    const auto r = simulate(
        t, std::make_unique<StaticPredictor>(true), small);
    EXPECT_GT(r.btbMissPenaltyCycles, 0u);
    EXPECT_LT(r.btbHitRate, 0.9);
}

TEST(OooCore, ResultRates)
{
    const auto t = branchy(100, 9, [](auto b) { return b % 4 != 0; });
    const auto r =
        simulate(t, std::make_unique<StaticPredictor>(true));
    EXPECT_EQ(r.condBranches, 100u);
    EXPECT_EQ(r.mispredictions, 25u);
    EXPECT_DOUBLE_EQ(r.mispredictionRate(), 0.25);
    EXPECT_DOUBLE_EQ(r.mispredictionPercent(), 25.0);
    EXPECT_EQ(r.instructions, t.size());
}

} // namespace
} // namespace bpsim
