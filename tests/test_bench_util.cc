/**
 * @file
 * Tests for the shared bench CLI parsing: `--jobs N` and `--jobs=N`
 * both parse (and both reject garbage with exit code 2), the
 * ReportSession strips `--report`/`--trace` in either form, and
 * unknown leftovers still trip requireNoExtraArgs.
 */

#include "bench_util.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/report_session.hh"

namespace bpsim {
namespace {

/** argv builder with stable storage. */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (std::string &s : strings)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(strings.size());
    }

    std::vector<std::string> strings;
    std::vector<char *> ptrs;
    int argc;

    char **data() { return ptrs.data(); }
};

TEST(TakeJobsFlag, ParsesSeparatedForm)
{
    Argv a({"bench", "--jobs", "4", "tail"});
    EXPECT_EQ(takeJobsFlag(a.argc, a.data()), 4u);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.data()[1], "tail");
}

TEST(TakeJobsFlag, ParsesEqualsForm)
{
    Argv a({"bench", "--jobs=7", "tail"});
    EXPECT_EQ(takeJobsFlag(a.argc, a.data()), 7u);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.data()[1], "tail");
}

TEST(TakeJobsFlag, LastOccurrenceWinsAcrossForms)
{
    Argv a({"bench", "--jobs", "2", "--jobs=9"});
    EXPECT_EQ(takeJobsFlag(a.argc, a.data()), 9u);
    EXPECT_EQ(a.argc, 1);
}

TEST(TakeJobsFlag, AbsentFlagReturnsZero)
{
    Argv a({"bench", "other"});
    EXPECT_EQ(takeJobsFlag(a.argc, a.data()), 0u);
    EXPECT_EQ(a.argc, 2);
}

TEST(TakeJobsFlag, TrailingFlagIsLeftForUnknownArgCheck)
{
    Argv a({"bench", "--jobs"});
    EXPECT_EQ(takeJobsFlag(a.argc, a.data()), 0u);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.data()[1], "--jobs");
}

using BenchUtilDeathTest = ::testing::Test;

TEST(BenchUtilDeathTest, SeparatedGarbageExits2)
{
    Argv a({"bench", "--jobs", "zero"});
    EXPECT_EXIT(takeJobsFlag(a.argc, a.data()),
                ::testing::ExitedWithCode(2), "positive integer");
}

TEST(BenchUtilDeathTest, EqualsGarbageExits2)
{
    Argv a({"bench", "--jobs=-3"});
    EXPECT_EXIT(takeJobsFlag(a.argc, a.data()),
                ::testing::ExitedWithCode(2), "positive integer");
}

TEST(BenchUtilDeathTest, EqualsEmptyExits2)
{
    Argv a({"bench", "--jobs="});
    EXPECT_EXIT(takeJobsFlag(a.argc, a.data()),
                ::testing::ExitedWithCode(2), "positive integer");
}

TEST(BenchUtilDeathTest, UnknownArgumentExits2)
{
    Argv a({"bench", "--frobnicate"});
    EXPECT_EXIT(requireNoExtraArgs(a.argc, a.data()),
                ::testing::ExitedWithCode(2), "unknown argument");
}

TEST(ReportSession, StripsSeparatedForm)
{
    const std::string report = ::testing::TempDir() + "bu_sep.json";
    const std::string trace = ::testing::TempDir() + "bu_sep.jsonl";
    Argv a({"bench", "--report", report, "--trace", trace, "x"});
    obs::ReportSession s(a.argc, a.data(), "test");
    EXPECT_EQ(s.reportPath(), report);
    EXPECT_EQ(s.tracePath(), trace);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.data()[1], "x");
    // Neutralize the destructor's file writes.
    (void)s.finish();
}

TEST(ReportSession, StripsEqualsForm)
{
    const std::string report = ::testing::TempDir() + "bu_eq.json";
    const std::string trace = ::testing::TempDir() + "bu_eq.jsonl";
    Argv a({"bench", "--report=" + report, "--trace=" + trace, "x"});
    obs::ReportSession s(a.argc, a.data(), "test");
    EXPECT_EQ(s.reportPath(), report);
    EXPECT_EQ(s.tracePath(), trace);
    ASSERT_EQ(a.argc, 2);
    EXPECT_STREQ(a.data()[1], "x");
    (void)s.finish();
}

} // namespace
} // namespace bpsim
