/** @file Behavioural tests across the whole predictor suite. */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/rng.hh"
#include "predictors/bimodal.hh"
#include "predictors/bimode.hh"
#include "predictors/gshare.hh"
#include "predictors/gshare_fast.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"
#include "predictors/multicomponent.hh"
#include "predictors/perceptron.hh"
#include "predictors/static_pred.hh"
#include "predictors/tournament.hh"

namespace bpsim {
namespace {

using Factory = std::function<std::unique_ptr<DirectionPredictor>()>;

std::vector<std::pair<std::string, Factory>>
allPredictors()
{
    return {
        {"bimodal", [] { return std::make_unique<BimodalPredictor>(4096); }},
        {"gshare", [] { return std::make_unique<GsharePredictor>(4096); }},
        {"bimode", [] { return std::make_unique<BiModePredictor>(2048); }},
        {"gskew", [] { return std::make_unique<GskewPredictor>(2048); }},
        {"local",
         [] { return std::make_unique<LocalPredictor>(1024, 10); }},
        {"tournament",
         [] { return std::make_unique<TournamentPredictor>(); }},
        {"perceptron",
         [] { return std::make_unique<PerceptronPredictor>(256, 24, 10); }},
        {"multicomponent",
         [] {
             return std::make_unique<MultiComponentPredictor>(
                 std::vector<MultiComponentPredictor::ComponentSpec>{
                     {1024, 5}, {2048, 8}, {4096, 12}},
                 512, 256, 512);
         }},
        {"gshare.fast",
         [] { return std::make_unique<GshareFastPredictor>(4096, 2); }},
    };
}

/** Run a synthetic outcome stream and return the misprediction rate
 *  over the last half (after warmup). */
double
mispRate(DirectionPredictor &p,
         const std::function<bool(std::uint64_t, Rng &)> &outcome,
         std::size_t n = 20000, unsigned sites = 8)
{
    Rng rng(1234);
    std::size_t wrong = 0, counted = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const Addr pc = 0x1000 + (i % sites) * 16;
        const bool taken = outcome(i, rng);
        const bool pred = p.predict(pc);
        p.update(pc, taken);
        if (i >= n / 2) {
            ++counted;
            wrong += pred != taken ? 1 : 0;
        }
    }
    return static_cast<double>(wrong) / static_cast<double>(counted);
}

class PredictorSuiteTest
    : public ::testing::TestWithParam<std::pair<std::string, Factory>>
{
};

TEST_P(PredictorSuiteTest, LearnsConstantDirection)
{
    auto p = GetParam().second();
    EXPECT_LT(mispRate(*p, [](auto, auto &) { return true; }), 0.01);
    auto q = GetParam().second();
    EXPECT_LT(mispRate(*q, [](auto, auto &) { return false; }), 0.01);
}

TEST_P(PredictorSuiteTest, LearnsShortPeriodicPattern)
{
    // T T N T T N ... is capturable by any history/counter scheme
    // except pure bimodal hysteresis; allow generous slack.
    auto p = GetParam().second();
    const double r =
        mispRate(*p, [](std::uint64_t i, auto &) { return i % 3 != 2; });
    if (GetParam().first == "bimodal") {
        EXPECT_LT(r, 0.40);
    } else {
        EXPECT_LT(r, 0.05) << GetParam().first;
    }
}

TEST_P(PredictorSuiteTest, RandomStreamNearFiftyPercent)
{
    auto p = GetParam().second();
    const double r = mispRate(
        *p, [](auto, Rng &rng) { return rng.nextBool(0.5); });
    EXPECT_GT(r, 0.40) << GetParam().first;
    EXPECT_LT(r, 0.60) << GetParam().first;
}

TEST_P(PredictorSuiteTest, BiasedStreamBeatsCoinFlip)
{
    auto p = GetParam().second();
    const double r = mispRate(
        *p, [](auto, Rng &rng) { return rng.nextBool(0.9); });
    EXPECT_LT(r, 0.15) << GetParam().first;
}

TEST_P(PredictorSuiteTest, ReportsNonzeroStorage)
{
    auto p = GetParam().second();
    EXPECT_GT(p->storageBits(), 0u);
    EXPECT_EQ(p->storageBytes(), (p->storageBits() + 7) / 8);
    EXPECT_FALSE(p->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    All, PredictorSuiteTest, ::testing::ValuesIn(allPredictors()),
    [](const auto &info) {
        std::string n = info.param.first;
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(StaticPredictor, FixedDirection)
{
    StaticPredictor taken(true), not_taken(false);
    EXPECT_TRUE(taken.predict(0x40));
    EXPECT_FALSE(not_taken.predict(0x40));
    EXPECT_EQ(taken.storageBits(), 0u);
}

TEST(Gshare, HistoryDisambiguatesSameAddress)
{
    // One branch whose outcome is the outcome of 4 branches ago:
    // bimodal stays near 50%, gshare learns it.
    auto pattern = [](std::uint64_t /*i*/, Rng &rng) {
        static thread_local std::vector<bool> hist;
        bool out;
        if (hist.size() < 4) {
            out = rng.nextBool(0.5);
        } else {
            out = hist[hist.size() - 4];
        }
        hist.push_back(out);
        return out;
    };
    // Note: the pattern above is self-referential and converges to a
    // fixed cycle, which is exactly what history predictors exploit.
    GsharePredictor g(4096);
    BimodalPredictor b(4096);
    const double rg = mispRate(g, pattern, 20000, 1);
    EXPECT_LT(rg, 0.02);
    (void)b;
}

TEST(Local, CapturesPerBranchPeriodicity)
{
    // Two interleaved branches with different periods confuse a
    // global-history-only view at short history but are trivial for
    // per-branch local histories.
    LocalPredictor local(256, 10);
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 30000; ++i) {
        const Addr pc = (i % 2) ? 0x100 : 0x200;
        const bool taken =
            (i % 2) ? ((i / 2) % 5 != 0) : ((i / 2) % 7 != 0);
        const bool pred = local.predict(pc);
        local.update(pc, taken);
        if (i > 15000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.02);
}

TEST(Perceptron, ThresholdMatchesTocsFormula)
{
    PerceptronPredictor p(64, 20, 10);
    EXPECT_EQ(p.threshold(), static_cast<int>(1.93 * 30) + 14);
}

TEST(Perceptron, LearnsLinearlySeparableCorrelation)
{
    // Outcome = outcome 2 back XOR outcome 5 back is NOT linearly
    // separable; outcome = outcome 3 back is. Check the latter.
    PerceptronPredictor p(256, 16, 0);
    std::vector<bool> hist{true, false, true};
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 20000; ++i) {
        const bool taken = hist[hist.size() - 3];
        const bool pred = p.predict(0x100);
        p.update(0x100, taken);
        hist.push_back(taken);
        if (i > 10000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.01);
}

TEST(MultiComponent, SelectsWorkingComponentPerBranch)
{
    // Branch A needs long history (period 11); branch B is biased.
    MultiComponentPredictor mc(
        {{1024, 4}, {2048, 12}}, 512, 256, 512);
    EXPECT_EQ(mc.numComponents(), 4u); // bimodal + local + 2 globals
    std::size_t wrong = 0, total = 0;
    for (std::size_t i = 0; i < 40000; ++i) {
        const Addr pc = (i % 2) ? 0x100 : 0x200;
        const bool taken = (i % 2) ? ((i / 2) % 11 != 0) : true;
        const bool pred = mc.predict(pc);
        mc.update(pc, taken);
        if (i > 20000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.06);
}

TEST(BiMode, SeparatesOppositeBiases)
{
    // Two branches that alias in a small table but have opposite
    // biases: bi-mode's banks keep them apart.
    BiModePredictor bm(512);
    std::size_t wrong = 0, total = 0;
    Rng rng(5);
    for (std::size_t i = 0; i < 30000; ++i) {
        const bool which = i % 2;
        const Addr pc = which ? 0x1000 : 0x9000;
        const bool taken = which ? rng.nextBool(0.95)
                                 : rng.nextBool(0.05);
        const bool pred = bm.predict(pc);
        bm.update(pc, taken);
        if (i > 15000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.12);
}

} // namespace
} // namespace bpsim
