/** @file Tests for the branch target buffer. */

#include "sim/btb.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(512, 2);
    EXPECT_FALSE(btb.lookup(0x100).has_value());
    btb.update(0x100, 0xabc0);
    const auto t = btb.lookup(0x100);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0xabc0u);
    EXPECT_EQ(btb.lookups(), 2u);
    EXPECT_EQ(btb.hits(), 1u);
    EXPECT_DOUBLE_EQ(btb.hitRate(), 0.5);
}

TEST(Btb, TargetCanBeRefreshed)
{
    Btb btb(512, 2);
    btb.update(0x100, 0x1000);
    btb.update(0x100, 0x2000);
    EXPECT_EQ(*btb.lookup(0x100), 0x2000u);
}

TEST(Btb, SetConflictEvictsLru)
{
    Btb btb(4, 2); // 2 sets x 2 ways; pcs 16 bytes apart alternate sets
    // These three all map to set 0 (pc >> 4 even).
    const Addr a = 0x000, b = 0x020, c = 0x040;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a); // a becomes MRU
    btb.update(c, 3); // evicts b
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Btb, DistinctSetsDoNotInterfere)
{
    Btb btb(4, 2);
    btb.update(0x000, 1); // set 0
    btb.update(0x010, 2); // set 1
    EXPECT_EQ(*btb.lookup(0x000), 1u);
    EXPECT_EQ(*btb.lookup(0x010), 2u);
}

} // namespace
} // namespace bpsim
