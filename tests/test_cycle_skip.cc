/**
 * @file
 * Golden-equivalence tests for event-driven cycle skipping in the
 * timing core: with CoreConfig::cycleSkip on, runTiming must produce
 * exactly the run it produces with per-cycle stepping — same final
 * cycle count, same stall/flush attribution in every SimResult
 * counter, and a byte-identical traced event stream — across all
 * twelve suite workloads and several delay modes.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/factory.hh"
#include "core/runner.hh"
#include "obs/event_trace.hh"
#include "predictors/static_pred.hh"
#include "sim/ooo_core.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {
namespace {

/** Every counter and rate of two SimResults must agree exactly. */
void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredictions, b.mispredictions);
    EXPECT_EQ(a.overridingBubbleCycles, b.overridingBubbleCycles);
    EXPECT_EQ(a.btbMissPenaltyCycles, b.btbMissPenaltyCycles);
    EXPECT_EQ(a.mispredictWaitCycles, b.mispredictWaitCycles);
    EXPECT_EQ(a.icacheStallCycles, b.icacheStallCycles);
    EXPECT_EQ(a.frontEndStallCycles, b.frontEndStallCycles);
    EXPECT_EQ(a.overrideStallCycles, b.overrideStallCycles);
    EXPECT_EQ(a.btbStallCycles, b.btbStallCycles);
    EXPECT_EQ(a.robStallCycles, b.robStallCycles);
    EXPECT_EQ(a.flushes, b.flushes);
    EXPECT_EQ(a.squashedUops, b.squashedUops);
    EXPECT_EQ(a.l1iMissRate, b.l1iMissRate);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.btbHitRate, b.btbHitRate);
}

/** The traced event streams must match event by event. */
void
expectIdenticalEvents(const obs::EventTracer &a,
                      const obs::EventTracer &b,
                      const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_EQ(a.recorded(), b.recorded());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const obs::TraceEvent &ea = a.at(i);
        const obs::TraceEvent &eb = b.at(i);
        ASSERT_EQ(ea.cycle, eb.cycle) << "event " << i;
        ASSERT_EQ(ea.pc, eb.pc) << "event " << i;
        ASSERT_EQ(ea.arg, eb.arg) << "event " << i;
        ASSERT_EQ(static_cast<int>(ea.type),
                  static_cast<int>(eb.type))
            << "event " << i;
    }
}

/** Run @p trace under @p make-built predictors with skipping off and
 *  on (tracing both runs) and require identical outcomes. */
void
compareRuns(const TraceBuffer &trace,
            const std::function<std::unique_ptr<FetchPredictor>()>
                &make,
            const std::string &what)
{
    CoreConfig stepped;
    stepped.cycleSkip = false;
    CoreConfig skipping;
    skipping.cycleSkip = true;

    obs::EventTracer steppedEvents;
    obs::EventTracer skippingEvents;
    auto p0 = make();
    auto p1 = make();
    const SimResult r0 =
        runTiming(stepped, *p0, trace, &steppedEvents);
    const SimResult r1 =
        runTiming(skipping, *p1, trace, &skippingEvents);
    expectIdentical(r0, r1, what);
    expectIdenticalEvents(steppedEvents, skippingEvents, what);
}

/** All twelve workloads under the delay shapes that exercise every
 *  stall reason: overriding bubbles + redirects (Overriding), hard
 *  stalls (Stall), and the plain zero-delay path (Ideal). */
TEST(CycleSkip, GoldenAcrossSuiteWorkloads)
{
    const SuiteTraces suite(25000, 11);
    const struct
    {
        PredictorKind kind;
        std::size_t budget;
        DelayMode mode;
    } configs[] = {
        {PredictorKind::Gshare, 64 * 1024, DelayMode::Overriding},
        {PredictorKind::Perceptron, 16 * 1024, DelayMode::Stall},
        {PredictorKind::Bimodal, 4 * 1024, DelayMode::Ideal},
    };
    for (const auto &c : configs) {
        for (std::size_t i = 0; i < suite.size(); ++i) {
            compareRuns(
                suite.trace(i),
                [&] {
                    return makeFetchPredictor(c.kind, c.budget,
                                              c.mode);
                },
                kindName(c.kind) + "/" + delayModeName(c.mode) + "/" +
                    suite.name(i));
        }
    }
}

/** The paper's pipelined predictor drives fetch through a different
 *  wrapper (recovery restarts, per-cycle idle ticks); the skip must
 *  not change its runs either. */
TEST(CycleSkip, GoldenForGshareFast)
{
    const SuiteTraces suite(25000, 11);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        compareRuns(
            suite.trace(i),
            [] {
                return makeFetchPredictor(PredictorKind::GshareFast,
                                          32 * 1024,
                                          DelayMode::Pipelined);
            },
            "gshare.fast/" + suite.name(i));
    }
}

/** A load-latency-bound dependence chain ends with a long back-end
 *  drain after fetch exhausts the trace — the skip's largest jumps.
 *  Keep a directed test so suite composition changes cannot silently
 *  drop the coverage. */
TEST(CycleSkip, GoldenOnSerialLoadChain)
{
    TraceBuffer t;
    for (std::size_t i = 0; i < 2000; ++i) {
        MicroOp op;
        op.pc = 0x1000 + (i % 512) * 4;
        op.cls = i % 3 == 0 ? InstClass::Load : InstClass::IntAlu;
        op.extra = 0x900000 + (i % 64) * 4096; // thrash L1D
        op.dst = static_cast<std::uint8_t>(1 + i % 2);
        op.srcA = static_cast<std::uint8_t>(1 + (i + 1) % 2);
        t.push(op);
    }
    compareRuns(
        t,
        [] {
            return std::make_unique<SingleCycleFetchPredictor>(
                std::make_unique<StaticPredictor>(true));
        },
        "serial-load-chain");
}

/** cycleSkip defaults on: the shipping configuration is the skipping
 *  one, and the default-constructed config says so. */
TEST(CycleSkip, DefaultsOn)
{
    EXPECT_TRUE(CoreConfig{}.cycleSkip);
}

} // namespace
} // namespace bpsim
