/**
 * @file
 * Tests for SRAM fault injection (src/robust): the visitState()
 * coverage invariant, deterministic bit flipping, graceful accuracy
 * degradation, and trace corruption.
 */

#include "robust/fault_injector.hh"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "robust/trace_fault.hh"
#include "sim/btb.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

/** Tallies fields without mutating anything. */
class CountingVisitor : public robust::StateVisitor
{
  public:
    void
    visit(const robust::StateField &field) override
    {
        totalBits_ += field.totalBits();
        ++fields_;
        // Exercise the accessors on the first element so a broken
        // load/store pair fails here, not only under bombardment.
        if (field.count > 0) {
            const std::uint64_t v = field.load(0);
            field.store(0, v);
            EXPECT_EQ(field.load(0), v) << field.name;
        }
    }

    std::size_t totalBits() const { return totalBits_; }
    std::size_t fields() const { return fields_; }

  private:
    std::size_t totalBits_ = 0;
    std::size_t fields_ = 0;
};

TEST(StateVisitor, ExposedBitsMatchStorageBits)
{
    // The fault model must cover exactly the hardware budget the
    // paper charges — no hidden state, no double counting.
    const std::vector<PredictorKind> kinds = {
        PredictorKind::Bimodal,       PredictorKind::Gshare,
        PredictorKind::GshareFast,    PredictorKind::Perceptron,
        PredictorKind::MultiComponent, PredictorKind::Gskew,
    };
    for (PredictorKind kind : kinds) {
        auto pred = makePredictor(kind, 64 * 1024);
        CountingVisitor counter;
        pred->visitState(counter);
        EXPECT_EQ(counter.totalBits(), pred->storageBits())
            << kindName(kind);
        EXPECT_GT(counter.fields(), 0u) << kindName(kind);
    }
}

TEST(StateVisitor, FetchWrappersForwardToComponents)
{
    for (auto mode : {DelayMode::Ideal, DelayMode::Overriding,
                      DelayMode::Pipelined}) {
        auto fp = makeFetchPredictor(PredictorKind::Perceptron,
                                     64 * 1024, mode);
        CountingVisitor counter;
        fp->visitState(counter);
        // Overriding wraps quick + slow, so it exposes at least the
        // slow predictor's fields; the others exactly one predictor.
        EXPECT_GT(counter.fields(), 0u) << delayModeName(mode);
        EXPECT_GT(counter.totalBits(), 0u) << delayModeName(mode);
    }
}

TEST(StateVisitor, WeightFieldSignExtendsRoundTrip)
{
    std::vector<SignedWeight> weights(3, SignedWeight(8));
    weights[0].set(-128);
    weights[1].set(-1);
    weights[2].set(127);
    const robust::StateField f =
        robust::weightField("w", weights, 8);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const std::int16_t before = weights[i].value();
        f.store(i, f.load(i));
        EXPECT_EQ(weights[i].value(), before) << "weight " << i;
    }
    // Flipping the sign bit of -1 (0xff) gives 0x7f == +127.
    f.store(1, f.load(1) ^ 0x80);
    EXPECT_EQ(weights[1].value(), 127);
}

TEST(FaultInjector, RateZeroIsTransparent)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 60000, 3);

    auto clean = makePredictor(PredictorKind::Gshare, 64 * 1024);
    const AccuracyResult base = runAccuracy(*clean, trace);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 0.0;
    robust::FaultInjectingPredictor faulty(
        makePredictor(PredictorKind::Gshare, 64 * 1024), plan);
    const AccuracyResult r = runAccuracy(faulty, trace);

    EXPECT_EQ(r.branches, base.branches);
    EXPECT_EQ(r.mispredictions, base.mispredictions);
    EXPECT_EQ(faulty.injector().flips(), 0u);
    EXPECT_GT(faulty.injector().events(), 0u);
}

TEST(FaultInjector, SameSeedSameFlipsAndPredictions)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer trace = generateTrace(*w, 60000, 5);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-3;
    plan.intervalBranches = 512;
    plan.seed = 1234;

    AccuracyResult runs[2];
    Counter flips[2];
    for (int i = 0; i < 2; ++i) {
        robust::FaultInjectingPredictor pred(
            makePredictor(PredictorKind::Perceptron, 64 * 1024),
            plan);
        runs[i] = runAccuracy(pred, trace);
        flips[i] = pred.injector().flips();
    }
    EXPECT_EQ(runs[0].mispredictions, runs[1].mispredictions);
    EXPECT_EQ(flips[0], flips[1]);
    EXPECT_GT(flips[0], 0u);
}

TEST(FaultInjector, HighRateDegradesButNeverBreaks)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 60000, 3);

    auto clean = makePredictor(PredictorKind::Gshare, 64 * 1024);
    const AccuracyResult base = runAccuracy(*clean, trace);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-2; // thousands of flips per event
    plan.intervalBranches = 512;
    robust::FaultInjectingPredictor faulty(
        makePredictor(PredictorKind::Gshare, 64 * 1024), plan);
    const AccuracyResult r = runAccuracy(faulty, trace);

    // Same branch stream, worse accuracy, no crash: predictor state
    // is architecturally invisible, so bombardment only costs
    // mispredictions.
    EXPECT_EQ(r.branches, base.branches);
    EXPECT_GT(r.mispredictions, base.mispredictions);
    EXPECT_GT(faulty.injector().flips(), 1000u);
}

TEST(FaultInjector, TargetPrefixRestrictsFields)
{
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-2;
    plan.targetPrefix = "pred.gshare.pht";
    robust::FaultInjector injector(plan);

    auto pred = makePredictor(PredictorKind::Gshare, 64 * 1024);
    injector.beginEvent();
    pred->visitState(injector);

    EXPECT_GT(injector.flips(), 0u);
    for (const auto &[name, n] : injector.flipsByField()) {
        EXPECT_EQ(name.rfind("pred.gshare.pht", 0), 0u) << name;
        EXPECT_GT(n, 0u);
    }
}

TEST(FaultPlan, MatchesCombinesPrefixesAndExactNames)
{
    robust::FaultPlan plan;
    // No targeting at all: everything matches.
    EXPECT_TRUE(plan.matches("pred.gshare.pht"));
    EXPECT_TRUE(plan.matches(""));

    plan.targetPrefix = "pred.gshare.";
    EXPECT_TRUE(plan.matches("pred.gshare.pht"));
    EXPECT_FALSE(plan.matches("pred.perceptron.weights"));

    // Multiple prefixes OR together, and with the legacy single one.
    plan.targetPrefixes = {"pred.2bc-gskew.g0", "pred.2bc-gskew.g1"};
    EXPECT_TRUE(plan.matches("pred.gshare.history"));
    EXPECT_TRUE(plan.matches("pred.2bc-gskew.g0"));
    EXPECT_TRUE(plan.matches("pred.2bc-gskew.g1"));
    EXPECT_FALSE(plan.matches("pred.2bc-gskew.meta"));

    // Exact names are exact: no prefix semantics.
    plan.targetPrefix.clear();
    plan.targetPrefixes.clear();
    plan.targetFields = {"pred.perceptron.global_history"};
    EXPECT_TRUE(plan.matches("pred.perceptron.global_history"));
    EXPECT_FALSE(plan.matches("pred.perceptron.global_histories"));
    EXPECT_FALSE(plan.matches("pred.perceptron"));
}

TEST(FaultInjector, ExactFieldTargetingHitsOnlyThatField)
{
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-2;
    plan.targetFields = {"pred.gshare.history"};
    robust::FaultInjector injector(plan);

    auto pred = makePredictor(PredictorKind::Gshare, 64 * 1024);
    // The history register is tiny; fire enough events for the
    // Poisson sampler to land at least one flip in it.
    for (int i = 0; i < 200; ++i) {
        injector.beginEvent();
        pred->visitState(injector);
    }
    EXPECT_GT(injector.flips(), 0u);
    ASSERT_EQ(injector.flipsByField().size(), 1u);
    EXPECT_EQ(injector.flipsByField().begin()->first,
              "pred.gshare.history");
}

TEST(FaultInjector, MultiPrefixTargetingCoversListedBanksOnly)
{
    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-2;
    plan.targetPrefixes = {"pred.2bc-gskew.g0", "pred.2bc-gskew.g1"};
    robust::FaultInjector injector(plan);

    auto pred = makePredictor(PredictorKind::Gskew, 64 * 1024);
    injector.beginEvent();
    pred->visitState(injector);

    EXPECT_GT(injector.flips(), 0u);
    EXPECT_GE(injector.flipsByField().size(), 2u);
    for (const auto &[name, n] : injector.flipsByField()) {
        EXPECT_TRUE(name.rfind("pred.2bc-gskew.g0", 0) == 0 ||
                    name.rfind("pred.2bc-gskew.g1", 0) == 0)
            << name;
        EXPECT_GT(n, 0u);
    }
}

TEST(FaultInjector, BombardsTheBtb)
{
    Btb btb(512, 2);
    for (Addr pc = 0; pc < 512 * 16; pc += 16)
        btb.update(pc, pc + 64);

    CountingVisitor counter;
    btb.visitState(counter);
    // 512 entries x (48 tag + 48 target + 1 valid) bits.
    EXPECT_EQ(counter.totalBits(), 512u * 97u);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 0.05;
    robust::FaultInjector injector(plan);
    injector.beginEvent();
    btb.visitState(injector);
    EXPECT_GT(injector.flips(), 0u);

    // A flipped valid/tag bit shows up as misses or wrong targets —
    // the misprediction machinery's problem, never a crash.
    std::size_t changed = 0;
    for (Addr pc = 0; pc < 512 * 16; pc += 16) {
        const auto t = btb.lookup(pc);
        if (!t || *t != pc + 64)
            ++changed;
    }
    EXPECT_GT(changed, 0u);
}

TEST(TraceFault, CorruptTraceIsDeterministicAndKeepsClasses)
{
    const auto w = makeWorkload("254.gap");
    TraceBuffer a = generateTrace(*w, 30000, 9);
    TraceBuffer b = generateTrace(*w, 30000, 9);
    const TraceBuffer original = generateTrace(*w, 30000, 9);

    Rng rngA(77), rngB(77);
    const auto statsA = robust::corruptTrace(a, 0.01, rngA);
    const auto statsB = robust::corruptTrace(b, 0.01, rngB);

    EXPECT_GT(statsA.recordsHit, 0u);
    EXPECT_EQ(statsA.recordsHit, statsB.recordsHit);
    EXPECT_EQ(statsA.total(), statsB.total());

    std::size_t diffs = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cls, original[i].cls) << "op " << i;
        ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "op " << i;
        if (a[i].pc != original[i].pc ||
            a[i].taken != original[i].taken ||
            a[i].extra != original[i].extra)
            ++diffs;
    }
    EXPECT_GT(diffs, 0u);

    // The corrupted trace still drives a full accuracy run.
    auto pred = makePredictor(PredictorKind::Gshare, 16 * 1024);
    const AccuracyResult r = runAccuracy(*pred, a);
    EXPECT_GT(r.branches, 0u);
}

TEST(TraceFault, IoFaultInjectorIsDeterministicAndCapped)
{
    robust::IoFaultInjector a(0.5, 42, 3);
    robust::IoFaultInjector b(0.5, 42, 3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.shouldFail(), b.shouldFail()) << "call " << i;
    EXPECT_EQ(a.failures(), 3u);
    EXPECT_EQ(a.calls(), 100u);
}

} // namespace
} // namespace bpsim
