/** @file Cross-workload character tests: the properties that make
 *  each SPECint stand-in play its namesake's role in the paper's
 *  evaluation (memory-boundedness, branch hardness orderings,
 *  compute intensity). These lock in the workload tuning. */

#include <gtest/gtest.h>

#include <map>

#include "core/factory.hh"
#include <set>
#include "core/runner.hh"
#include "workloads/registry.hh"

namespace bpsim {
namespace {

class CharacterTest : public ::testing::Test
{
  protected:
    static const SuiteTraces &
    suite()
    {
        static SuiteTraces s(150000, 42);
        return s;
    }

    static const std::map<std::string, AccuracyResult> &
    gshareAccuracy()
    {
        static const std::map<std::string, AccuracyResult> acc = [] {
            std::map<std::string, AccuracyResult> m;
            const auto res = suiteAccuracy(suite(), [] {
                return makePredictor(PredictorKind::Gshare, 64 * 1024);
            });
            for (std::size_t i = 0; i < suite().size(); ++i)
                m[suite().name(i)] = res[i];
            return m;
        }();
        return acc;
    }

    static const std::map<std::string, SimResult> &
    timing()
    {
        static const std::map<std::string, SimResult> t = [] {
            std::map<std::string, SimResult> m;
            CoreConfig cfg;
            const auto res = suiteTiming(suite(), cfg, [] {
                return makeFetchPredictor(PredictorKind::GshareFast,
                                          64 * 1024,
                                          DelayMode::Pipelined);
            });
            for (std::size_t i = 0; i < suite().size(); ++i)
                m[suite().name(i)] = res[i];
            return m;
        }();
        return t;
    }
};

TEST_F(CharacterTest, TwolfIsAmongTheHardestBranchWorkloads)
{
    // The paper singles out 300.twolf as the benchmark where
    // overriding disagreement peaks; its branches must be near the
    // top of the difficulty ranking.
    const auto &acc = gshareAccuracy();
    const double twolf = acc.at("300.twolf").percent();
    int harder = 0;
    for (const auto &[name, r] : acc)
        if (r.percent() > twolf)
            ++harder;
    EXPECT_LE(harder, 2) << "at most two workloads harder than twolf";
}

TEST_F(CharacterTest, GapAndVortexAreEasy)
{
    const auto &acc = gshareAccuracy();
    EXPECT_LT(acc.at("254.gap").percent(), 5.0);
    EXPECT_LT(acc.at("255.vortex").percent(), 9.0);
    // And both easier than the mean of the suite.
    double mean = 0;
    for (const auto &[name, r] : acc)
        mean += r.percent();
    mean /= static_cast<double>(acc.size());
    EXPECT_LT(acc.at("254.gap").percent(), mean);
    EXPECT_LT(acc.at("255.vortex").percent(), mean);
}

TEST_F(CharacterTest, McfIsTheMemoryBoundOutlier)
{
    const auto &t = timing();
    const double mcf_miss = t.at("181.mcf").l1dMissRate;
    for (const auto &[name, r] : t) {
        if (name == "181.mcf")
            continue;
        EXPECT_GE(mcf_miss, r.l1dMissRate)
            << name << " should not out-miss mcf";
    }
    // And mcf has the lowest IPC of the suite.
    const double mcf_ipc = t.at("181.mcf").ipc();
    for (const auto &[name, r] : t) {
        if (name == "181.mcf")
            continue;
        EXPECT_LE(mcf_ipc, r.ipc()) << name;
    }
}

TEST_F(CharacterTest, GapHasTheHighestIpc)
{
    const auto &t = timing();
    const double gap = t.at("254.gap").ipc();
    int faster = 0;
    for (const auto &[name, r] : t)
        if (r.ipc() > gap)
            ++faster;
    EXPECT_LE(faster, 1);
}

TEST_F(CharacterTest, EonHasTheLowestBranchDensity)
{
    double eon = 0, others_min = 1.0;
    for (std::size_t i = 0; i < suite().size(); ++i) {
        const double d = suite().trace(i).branchDensity();
        if (suite().name(i) == "252.eon")
            eon = d;
        else
            others_min = std::min(others_min, d);
    }
    EXPECT_LE(eon, others_min + 0.02)
        << "eon is the compute-heavy outlier";
}

TEST_F(CharacterTest, GccHasTheLargestStaticFootprint)
{
    std::map<std::string, std::size_t> sites;
    for (std::size_t i = 0; i < suite().size(); ++i) {
        std::set<Addr> s;
        for (const auto &op : suite().trace(i))
            if (op.cls == InstClass::CondBranch)
                s.insert(op.pc);
        sites[suite().name(i)] = s.size();
    }
    for (const auto &[name, n] : sites) {
        if (name == "176.gcc")
            continue;
        EXPECT_GE(sites.at("176.gcc"), n) << name;
    }
    EXPECT_GE(sites.at("176.gcc"), 80u);
}

TEST_F(CharacterTest, SuiteSpansAnIpcRange)
{
    // The paper's Figure 8 spans roughly 3x between the slowest and
    // fastest benchmark; a suite without dynamic range can't show
    // per-benchmark effects.
    const auto &t = timing();
    double lo = 1e9, hi = 0;
    for (const auto &[name, r] : t) {
        lo = std::min(lo, r.ipc());
        hi = std::max(hi, r.ipc());
    }
    EXPECT_GT(hi / lo, 2.0);
}

} // namespace
} // namespace bpsim
