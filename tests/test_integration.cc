/** @file End-to-end integration tests: the full experiment pipeline
 *  on reduced trace lengths, checking the paper's qualitative
 *  claims hold through the whole stack. */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/runner.hh"

namespace bpsim {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    static const SuiteTraces &
    suite()
    {
        static SuiteTraces s(120000, 42);
        return s;
    }
};

TEST_F(IntegrationTest, AccuracyOrderingMatchesPaper)
{
    // Perceptron and multi-component are the most accurate;
    // bimodal is the least (Figures 1 and 5).
    auto mean_of = [&](PredictorKind k) {
        double m = 0;
        suiteAccuracy(
            suite(), [&] { return makePredictor(k, 64 * 1024); }, &m);
        return m;
    };
    const double bimodal = mean_of(PredictorKind::Bimodal);
    const double gshare = mean_of(PredictorKind::Gshare);
    const double perceptron = mean_of(PredictorKind::Perceptron);
    const double mc = mean_of(PredictorKind::MultiComponent);
    const double fast = mean_of(PredictorKind::GshareFast);

    EXPECT_LT(perceptron, gshare);
    EXPECT_LT(mc, gshare);
    EXPECT_LT(gshare, bimodal);
    // gshare.fast trades a little accuracy for its pipeline; it must
    // stay close to gshare (the paper's Figure 5 story).
    EXPECT_LT(fast, bimodal);
    EXPECT_NEAR(fast, gshare, 1.0);
}

TEST_F(IntegrationTest, EveryPredictorBeatsStaticBaseline)
{
    for (auto kind : allKinds()) {
        double m = 0;
        suiteAccuracy(
            suite(), [&] { return makePredictor(kind, 64 * 1024); },
            &m);
        EXPECT_LT(m, 25.0) << kindName(kind);
        EXPECT_GT(m, 0.5) << kindName(kind)
                          << " (suspiciously perfect)";
    }
}

TEST_F(IntegrationTest, OverridingNeverBeatsIdealOfSamePredictor)
{
    CoreConfig cfg;
    for (auto kind :
         {PredictorKind::Perceptron, PredictorKind::MultiComponent}) {
        double ideal = 0, over = 0;
        suiteTiming(
            suite(), cfg,
            [&] {
                return makeFetchPredictor(kind, 256 * 1024,
                                          DelayMode::Ideal);
            },
            &ideal);
        suiteTiming(
            suite(), cfg,
            [&] {
                return makeFetchPredictor(kind, 256 * 1024,
                                          DelayMode::Overriding);
            },
            &over);
        EXPECT_LE(over, ideal + 1e-9) << kindName(kind);
        EXPECT_GT(over, 0.0);
    }
}

TEST_F(IntegrationTest, GshareFastIpcUnaffectedByDelayMode)
{
    CoreConfig cfg;
    double pipelined = 0, ideal = 0;
    suiteTiming(
        suite(), cfg,
        [&] {
            return makeFetchPredictor(PredictorKind::GshareFast,
                                      256 * 1024, DelayMode::Pipelined);
        },
        &pipelined);
    suiteTiming(
        suite(), cfg,
        [&] {
            return makeFetchPredictor(PredictorKind::GshareFast,
                                      256 * 1024, DelayMode::Ideal);
        },
        &ideal);
    EXPECT_DOUBLE_EQ(pipelined, ideal)
        << "pipelining hides all delay: identical to a zero-delay "
           "predictor";
}

TEST_F(IntegrationTest, StallModeIsWorseThanOverriding)
{
    CoreConfig cfg;
    double stall = 0, over = 0;
    suiteTiming(
        suite(), cfg,
        [&] {
            return makeFetchPredictor(PredictorKind::Perceptron,
                                      256 * 1024, DelayMode::Stall);
        },
        &stall);
    suiteTiming(
        suite(), cfg,
        [&] {
            return makeFetchPredictor(PredictorKind::Perceptron,
                                      256 * 1024,
                                      DelayMode::Overriding);
        },
        &over);
    EXPECT_LT(stall, over)
        << "overriding exists because stalling on every branch is "
           "worse (Section 2.6)";
}

TEST_F(IntegrationTest, DisagreementRateInPaperRange)
{
    // Section 4.5: the slow predictor overrides a few percent of
    // predictions on average, up to ~18% on the hardest benchmark.
    CoreConfig cfg;
    RateStat agg;
    double worst = 0;
    for (std::size_t i = 0; i < suite().size(); ++i) {
        auto fp = makeFetchPredictor(PredictorKind::Perceptron,
                                     64 * 1024, DelayMode::Overriding);
        auto *over = dynamic_cast<OverridingFetchPredictor *>(fp.get());
        ASSERT_NE(over, nullptr);
        runTiming(cfg, *fp, suite().trace(i));
        agg.addEvents(over->disagreements().hits(),
                      over->disagreements().total());
        worst = std::max(worst, over->disagreements().percent());
    }
    EXPECT_GT(agg.percent(), 1.0);
    EXPECT_LT(agg.percent(), 25.0);
    EXPECT_LT(worst, 40.0);
}

} // namespace
} // namespace bpsim
