/** @file Tests for the deterministic workload RNG. */

#include "common/rng.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::uint64_t x = 0;
    for (int i = 0; i < 16; ++i)
        x |= r.next();
    EXPECT_NE(x, 0u);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.nextRange(17), 17u);
        EXPECT_LT(r.nextRange(1), 1u);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = r.nextBetween(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const double d = r.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 40000; ++i)
        hits += r.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 40000.0, 0.25, 0.02);
}

TEST(Rng, GeometricRespectsCapAndMean)
{
    Rng r(17);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        const unsigned g = r.nextGeometric(0.5, 10);
        EXPECT_LE(g, 10u);
        sum += g;
    }
    // Mean of geometric(0.5) is ~1 failure.
    EXPECT_NEAR(sum / 20000, 1.0, 0.1);
}

TEST(Rng, ZipfWithinRangeAndSkewed)
{
    Rng r(19);
    unsigned lo = 0;
    const std::uint64_t n = 1000;
    for (int i = 0; i < 20000; ++i) {
        const auto z = r.nextZipf(n, 1.0);
        ASSERT_LT(z, n);
        lo += z < n / 10 ? 1 : 0;
    }
    // A Zipf-ish law puts far more than 10% of mass in the low
    // decile.
    EXPECT_GT(lo / 20000.0, 0.25);
}

TEST(Rng, GaussianMoments)
{
    Rng r(23);
    double sum = 0, sum_sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

} // namespace
} // namespace bpsim
