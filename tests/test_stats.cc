/** @file Tests for the statistics accumulators. */

#include "common/stats.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(RunningStat, MeanMinMaxVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-9);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RateStat, CountsAndPercent)
{
    RateStat r;
    for (int i = 0; i < 100; ++i)
        r.event(i % 4 == 0);
    EXPECT_EQ(r.total(), 100u);
    EXPECT_EQ(r.hits(), 25u);
    EXPECT_DOUBLE_EQ(r.rate(), 0.25);
    EXPECT_DOUBLE_EQ(r.percent(), 25.0);
    r.addEvents(25, 100);
    EXPECT_DOUBLE_EQ(r.rate(), 0.25);
}

TEST(Means, ArithmeticHarmonicGeometric)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0};
    EXPECT_NEAR(arithmeticMean(xs), 7.0 / 3.0, 1e-12);
    EXPECT_NEAR(harmonicMean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
    EXPECT_NEAR(geometricMean(xs), 2.0, 1e-12);
    EXPECT_EQ(arithmeticMean({}), 0.0);
    EXPECT_EQ(harmonicMean({}), 0.0);
}

TEST(Means, HarmonicLeqArithmetic)
{
    // AM-HM inequality, the reason the paper reports harmonic-mean
    // IPC (it weights slow benchmarks more).
    const std::vector<double> xs = {0.5, 1.1, 1.9, 2.2};
    EXPECT_LE(harmonicMean(xs), arithmeticMean(xs));
}

TEST(Histogram, BucketsAndCdf)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(3);
    h.add(99); // clamps into last bucket
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_DOUBLE_EQ(h.cdf(0), 0.2);
    EXPECT_DOUBLE_EQ(h.cdf(1), 0.6);
    EXPECT_DOUBLE_EQ(h.cdf(3), 1.0);
}

} // namespace
} // namespace bpsim
