/**
 * @file
 * Golden equivalence of the devirtualized replay fast path against
 * the virtual-dispatch loop, for every factory predictor kind at
 * every standard budget: identical branch/misprediction counts,
 * identical describeStats() gauges, and bit-identical visitState()
 * dumps after the run. Also pins the dispatcher's coverage — every
 * factory-built type must take the monomorphized path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/dispatch.hh"
#include "core/factory.hh"
#include "core/runner.hh"
#include "predictors/static_pred.hh"
#include "robust/state_visitor.hh"
#include "trace/trace_buffer.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

/** Flattens every visited field into one comparable dump. */
struct StateDump : robust::StateVisitor
{
    struct Field
    {
        std::string name;
        std::size_t count;
        unsigned bits;
        std::vector<std::uint64_t> values;

        bool
        operator==(const Field &o) const
        {
            return name == o.name && count == o.count &&
                   bits == o.bits && values == o.values;
        }
    };
    std::vector<Field> fields;

    void
    visit(const robust::StateField &f) override
    {
        Field out{f.name, f.count, f.bits, {}};
        out.values.reserve(f.count);
        for (std::size_t i = 0; i < f.count; ++i)
            out.values.push_back(f.load(i));
        fields.push_back(std::move(out));
    }
};

TraceBuffer
suiteTrace()
{
    const auto w = makeWorkload(specint2000Names().front());
    return generateTrace(*w, 40000, 9);
}

TEST(KernelEquivalence, FastAndVirtualPathsAgreeEverywhere)
{
    const TraceBuffer trace = suiteTrace();
    for (const PredictorKind kind : allKinds()) {
        for (const std::size_t budget : standardBudgets()) {
            SCOPED_TRACE(kindName(kind) + "@" +
                         std::to_string(budget));
            auto fast = makePredictor(kind, budget);
            auto slow = makePredictor(kind, budget);
            const AccuracyResult rf = runAccuracy(*fast, trace);
            const AccuracyResult rs =
                runAccuracyVirtual(*slow, trace);
            ASSERT_EQ(rf.branches, rs.branches);
            ASSERT_EQ(rf.mispredictions, rs.mispredictions);

            // Same trained state, bit for bit...
            StateDump df;
            StateDump ds;
            fast->visitState(df);
            slow->visitState(ds);
            ASSERT_EQ(df.fields.size(), ds.fields.size());
            for (std::size_t i = 0; i < df.fields.size(); ++i)
                ASSERT_TRUE(df.fields[i] == ds.fields[i])
                    << "field " << df.fields[i].name;

            // ...and the same derived gauges.
            const auto sf = fast->describeStats();
            const auto ss = slow->describeStats();
            ASSERT_EQ(sf.size(), ss.size());
            for (std::size_t i = 0; i < sf.size(); ++i) {
                ASSERT_EQ(sf[i].name, ss[i].name);
                ASSERT_EQ(sf[i].value, ss[i].value);
            }
        }
    }
}

TEST(KernelEquivalence, DispatcherCoversEveryFactoryKind)
{
    for (const PredictorKind kind : allKinds()) {
        auto pred = makePredictor(kind, 16 * 1024);
        bool entered = false;
        const bool matched =
            withConcretePredictor(*pred, [&](auto &) {
                entered = true;
            });
        EXPECT_TRUE(matched) << kindName(kind);
        EXPECT_TRUE(entered) << kindName(kind);
    }
}

TEST(KernelEquivalence, UnknownTypesFallBackToVirtualLoop)
{
    StaticPredictor fixed(true);
    const bool matched =
        withConcretePredictor(fixed, [](auto &) { FAIL(); });
    EXPECT_FALSE(matched);

    // runAccuracy still works on it via the fallback.
    const TraceBuffer trace = suiteTrace();
    const AccuracyResult r = runAccuracy(fixed, trace);
    const AccuracyResult rv = runAccuracyVirtual(fixed, trace);
    EXPECT_EQ(r.branches, rv.branches);
    EXPECT_EQ(r.mispredictions, rv.mispredictions);
}

} // namespace
} // namespace bpsim
