/** @file Tests for the dual-path and cascading delay-hiding
 *  wrappers (Section 2.6 alternatives to overriding). */

#include "pipeline/alt_delay_hiding.hh"

#include <gtest/gtest.h>

#include "predictors/gshare.hh"
#include "predictors/static_pred.hh"

namespace bpsim {
namespace {

TEST(DualPath, ChargesHalfLatencyEveryBranch)
{
    DualPathFetchPredictor p(std::make_unique<StaticPredictor>(true),
                             8);
    for (int i = 0; i < 10; ++i) {
        const auto fp = p.predict(0x40);
        EXPECT_TRUE(fp.taken);
        EXPECT_EQ(fp.bubbleCycles, 4u);
        p.update(0x40, true);
    }
    EXPECT_EQ(p.slowLatency(), 8u);
}

TEST(DualPath, SingleCycleCostsNothing)
{
    DualPathFetchPredictor p(std::make_unique<StaticPredictor>(true),
                             1);
    EXPECT_EQ(p.predict(0x40).bubbleCycles, 0u);
}

TEST(Cascading, NeverBubbles)
{
    CascadingFetchPredictor p(
        std::make_unique<StaticPredictor>(true),
        std::make_unique<StaticPredictor>(false), 4);
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(p.predict(0x40).bubbleCycles, 0u);
        p.update(0x40, false);
    }
}

TEST(Cascading, FirstInstanceUsesQuickPredictor)
{
    // quick says taken, slow says not-taken: with no banked result
    // yet, the quick answer is used.
    CascadingFetchPredictor p(
        std::make_unique<StaticPredictor>(true),
        std::make_unique<StaticPredictor>(false), 4);
    EXPECT_TRUE(p.predict(0x40).taken);
    EXPECT_EQ(p.slowUsed().hits(), 0u);
}

TEST(Cascading, BankedSlowAnswerUsedWhenEnoughTimePassed)
{
    CascadingFetchPredictor p(
        std::make_unique<StaticPredictor>(true),
        std::make_unique<StaticPredictor>(false), 3);
    // First instance: quick (taken). Bank slow (not-taken), ready
    // after 3 more branches.
    EXPECT_TRUE(p.predict(0x40).taken);
    p.update(0x40, false);
    // Fill the pipe with other branches.
    for (Addr pc = 0x100; pc < 0x140; pc += 0x10) {
        p.predict(pc);
        p.update(pc, true);
    }
    // Now the banked slow answer is ready and should win.
    EXPECT_FALSE(p.predict(0x40).taken);
    EXPECT_GE(p.slowUsed().hits(), 1u);
}

TEST(Cascading, TightLoopFallsBackToQuick)
{
    // A branch re-fetched every cycle never has its slow answer
    // ready: latency 5, but only 1 branch between instances.
    CascadingFetchPredictor p(
        std::make_unique<StaticPredictor>(true),
        std::make_unique<StaticPredictor>(false), 5);
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(p.predict(0x40).taken) << "iteration " << i;
        p.update(0x40, false);
        p.predict(0x80);
        p.update(0x80, true);
    }
    EXPECT_EQ(p.slowUsed().hits(), 0u);
}

TEST(Cascading, StorageAndNameAggregate)
{
    CascadingFetchPredictor p(
        std::make_unique<GsharePredictor>(2048),
        std::make_unique<GsharePredictor>(1 << 14), 3);
    EXPECT_GT(p.storageBits(), (1u << 14) * 2);
    EXPECT_NE(p.name().find("cascading"), std::string::npos);
}

} // namespace
} // namespace bpsim
