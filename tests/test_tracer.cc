/** @file Tests for the Tracer instrumentation front-end. */

#include "trace/tracer.hh"

#include <gtest/gtest.h>

#include "trace/trace_buffer.hh"

namespace bpsim {
namespace {

constexpr Addr kCode = 0x400000;
constexpr Addr kData = 0x10000000;

TEST(Tracer, StopsExactlyAtBudget)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 10, 1);
    EXPECT_THROW(
        {
            for (;;)
                t.alu(1);
        },
        TraceLimit);
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_TRUE(t.done());
}

TEST(Tracer, BranchSitesAreStablePerCallSite)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    for (int i = 0; i < 3; ++i)
        t.condBranch(i % 2 == 0); // same call site each iteration
    EXPECT_EQ(buf[0].pc, buf[1].pc);
    EXPECT_EQ(buf[1].pc, buf[2].pc);
    t.condBranch(true); // a different call site
    EXPECT_NE(buf[3].pc, buf[0].pc);
}

TEST(Tracer, ExplicitSitesMapToDistinctPcs)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    t.condBranchAt(5, true);
    t.condBranchAt(6, false);
    t.condBranchAt(5, false);
    EXPECT_EQ(buf[0].pc, kCode + 5 * 16);
    EXPECT_EQ(buf[1].pc, kCode + 6 * 16);
    EXPECT_EQ(buf[0].pc, buf[2].pc);
    EXPECT_TRUE(buf[0].taken);
    EXPECT_FALSE(buf[2].taken);
}

TEST(Tracer, CondBranchReturnsItsCondition)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    EXPECT_TRUE(t.condBranch(true));
    EXPECT_FALSE(t.condBranch(false));
}

TEST(Tracer, BackwardHintMakesBackwardTarget)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    t.condBranchAt(100, true, BranchHint::Backward);
    t.condBranchAt(100, true, BranchHint::Forward);
    EXPECT_LT(buf[0].extra, buf[0].pc);
    EXPECT_GT(buf[1].extra, buf[1].pc);
}

TEST(Tracer, MemoryOpsCarryDataAddresses)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    t.load(0x123);
    t.store(0x456);
    EXPECT_EQ(buf[0].cls, InstClass::Load);
    EXPECT_EQ(buf[0].extra, kData + 0x123);
    EXPECT_NE(buf[0].dst, 0);
    EXPECT_EQ(buf[1].cls, InstClass::Store);
    EXPECT_EQ(buf[1].extra, kData + 0x456);
}

TEST(Tracer, RegistersStayInArchitecturalRange)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 500, 7);
    try {
        for (;;) {
            t.alu(3);
            t.load(8);
            t.mul();
            t.condBranch(true);
            t.store(16);
        }
    } catch (const TraceLimit &) {
    }
    for (const MicroOp &op : buf) {
        EXPECT_LT(op.dst, 64);
        EXPECT_LT(op.srcA, 64);
        EXPECT_LT(op.srcB, 64);
    }
}

TEST(Tracer, BranchConsumesRecentResults)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    t.load(64);
    const std::uint8_t load_dst = buf[0].dst;
    t.condBranch(true);
    EXPECT_EQ(buf[1].srcB, load_dst)
        << "branch should depend on the most recent load";
}

TEST(Tracer, JumpEmitsUnconditionalWithTarget)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 100, 1);
    t.jump(42);
    EXPECT_EQ(buf[0].cls, InstClass::UncondBranch);
    EXPECT_TRUE(buf[0].taken);
    EXPECT_EQ(buf[0].extra, kCode + 42 * 16);
}

TEST(Tracer, DensityAccounting)
{
    TraceBuffer buf;
    Tracer t(buf, kCode, kData, 1000, 1);
    try {
        for (;;) {
            t.alu(4);
            t.condBranch(true);
        }
    } catch (const TraceLimit &) {
    }
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_NEAR(buf.branchDensity(), 0.2, 0.01);
    EXPECT_EQ(buf.condBranches(), 200u);
}

TEST(Tracer, DeterministicForSameSeed)
{
    TraceBuffer a, b;
    Tracer ta(a, kCode, kData, 200, 99);
    Tracer tb(b, kCode, kData, 200, 99);
    auto drive = [](Tracer &t) {
        try {
            for (;;) {
                t.alu(2);
                t.load(32);
                t.condBranch(true);
            }
        } catch (const TraceLimit &) {
        }
    };
    drive(ta);
    drive(tb);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].srcA, b[i].srcA);
        EXPECT_EQ(a[i].srcB, b[i].srcB);
    }
}

} // namespace
} // namespace bpsim
