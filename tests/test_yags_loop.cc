/** @file Tests for the YAGS and loop predictors. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/gshare.hh"
#include "predictors/loop.hh"
#include "predictors/yags.hh"

namespace bpsim {
namespace {

TEST(Yags, LearnsBiasWithoutAllocatingExceptions)
{
    YagsPredictor y(4096, 1024);
    std::size_t wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool pred = y.predict(0x400);
        y.update(0x400, true);
        if (i > 100)
            wrong += pred != true;
    }
    EXPECT_EQ(wrong, 0u);
}

TEST(Yags, ExceptionCacheCapturesHistoryPatterns)
{
    // Bias is taken, but every 4th instance is not-taken — the
    // exception cache must learn the history-correlated exceptions.
    YagsPredictor y(4096, 4096);
    std::size_t wrong = 0, total = 0;
    for (int i = 0; i < 30000; ++i) {
        const bool taken = i % 4 != 3;
        const bool pred = y.predict(0x400);
        y.update(0x400, taken);
        if (i > 15000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.02);
}

TEST(Yags, SeparatesOppositelyBiasedAliases)
{
    YagsPredictor y(512, 256);
    Rng rng(3);
    std::size_t wrong = 0, total = 0;
    for (int i = 0; i < 30000; ++i) {
        const bool which = i % 2;
        const Addr pc = which ? 0x1000 : 0x9000;
        const bool taken =
            which ? rng.nextBool(0.97) : rng.nextBool(0.03);
        const bool pred = y.predict(pc);
        y.update(pc, taken);
        if (i > 15000) {
            ++total;
            wrong += pred != taken;
        }
    }
    EXPECT_LT(static_cast<double>(wrong) / total, 0.10);
}

TEST(Yags, StorageCountsTagsAndValidBits)
{
    YagsPredictor y(1024, 512, 8);
    // choice 2048b + 2 caches x 512 x (2+8+1)b + history.
    EXPECT_GE(y.storageBits(), 2048u + 2 * 512 * 11);
    EXPECT_LE(y.storageBits(), 2048u + 2 * 512 * 11 + 64);
}

TEST(Loop, LearnsExactTripCount)
{
    LoopPredictor loop(256);
    // 7-taken-then-exit loop: after two complete executions the
    // predictor must nail both body and exit.
    auto run_loop = [&](bool count_errors) {
        std::size_t wrong = 0;
        for (int k = 0; k < 8; ++k) {
            const bool taken = k != 7;
            const bool pred = loop.predict(0x40);
            loop.update(0x40, taken);
            if (count_errors && pred != taken)
                ++wrong;
        }
        return wrong;
    };
    for (int warm = 0; warm < 4; ++warm)
        run_loop(false);
    EXPECT_TRUE(loop.confident(0x40));
    EXPECT_EQ(run_loop(true), 0u)
        << "a learned loop mispredicts neither body nor exit";
}

TEST(Loop, BeatsGshareOnLongLoops)
{
    // Trip count 50 exceeds a 12-bit gshare history window; the
    // loop table learns it outright.
    LoopPredictor loop(256);
    GsharePredictor gshare(4096);
    std::size_t loop_wrong = 0, gshare_wrong = 0, total = 0;
    for (int rep = 0; rep < 200; ++rep) {
        for (int k = 0; k < 51; ++k) {
            const bool taken = k != 50;
            if (loop.predict(0x40) != taken)
                ++loop_wrong;
            if (gshare.predict(0x40) != taken)
                ++gshare_wrong;
            loop.update(0x40, taken);
            gshare.update(0x40, taken);
            ++total;
        }
    }
    EXPECT_LT(loop_wrong, gshare_wrong);
    EXPECT_LT(static_cast<double>(loop_wrong) / total, 0.01);
}

TEST(Loop, RelearnsChangedTripCount)
{
    LoopPredictor loop(256);
    auto run = [&](int trips) {
        for (int k = 0; k <= trips; ++k)
            loop.update(0x40, k != trips);
    };
    for (int i = 0; i < 5; ++i)
        run(5);
    EXPECT_TRUE(loop.confident(0x40));
    run(9); // trip count changed: confidence must drop
    EXPECT_FALSE(loop.confident(0x40));
    for (int i = 0; i < 5; ++i)
        run(9);
    EXPECT_TRUE(loop.confident(0x40));
}

TEST(Loop, GivesUpOnOverflowingCounts)
{
    LoopPredictor loop(64, 4); // max learnable trip count 15
    for (int rep = 0; rep < 6; ++rep)
        for (int k = 0; k <= 40; ++k)
            loop.update(0x40, k != 40);
    EXPECT_FALSE(loop.confident(0x40));
    EXPECT_TRUE(loop.predict(0x40)) << "falls back to taken";
}

} // namespace
} // namespace bpsim
