/** @file Guards the paper's Table 1 simulation parameters: if a
 *  refactor changes a default, the reproduction silently drifts —
 *  these tests make that loud instead. */

#include "sim/core_config.hh"

#include <gtest/gtest.h>

#include "sim/btb.hh"
#include "sim/cache.hh"

namespace bpsim {
namespace {

TEST(Table1, CacheGeometries)
{
    const CoreConfig cfg;
    // L1 I-cache: 64 KB, 64-byte lines, direct mapped.
    EXPECT_EQ(cfg.l1iSizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l1iLineBytes, 64u);
    EXPECT_EQ(cfg.l1iAssoc, 1u);
    // L1 D-cache: 64 KB, 64-byte lines, direct mapped.
    EXPECT_EQ(cfg.l1dSizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l1dLineBytes, 64u);
    EXPECT_EQ(cfg.l1dAssoc, 1u);
    // L2: 2 MB, 128-byte lines, 4-way.
    EXPECT_EQ(cfg.l2SizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(cfg.l2LineBytes, 128u);
    EXPECT_EQ(cfg.l2Assoc, 4u);
}

TEST(Table1, BtbAndWidthAndDepth)
{
    const CoreConfig cfg;
    EXPECT_EQ(cfg.btbEntries, 512u);
    EXPECT_EQ(cfg.btbAssoc, 2u);
    EXPECT_EQ(cfg.issueWidth, 8u);
    EXPECT_EQ(cfg.pipelineDepth, 20u);
    // The front end is most of a 20-deep pipe.
    EXPECT_GE(cfg.frontEndDepth, 10u);
    EXPECT_LT(cfg.frontEndDepth, cfg.pipelineDepth);
}

TEST(Table1, StructuresConstructFromConfig)
{
    const CoreConfig cfg;
    Cache l1i(cfg.l1iSizeBytes, cfg.l1iLineBytes, cfg.l1iAssoc, "l1i");
    Cache l2(cfg.l2SizeBytes, cfg.l2LineBytes, cfg.l2Assoc, "l2");
    Btb btb(cfg.btbEntries, cfg.btbAssoc);
    EXPECT_EQ(l1i.sizeBytes() / l1i.lineBytes(), 1024u);
    EXPECT_EQ(l2.sizeBytes() / (l2.lineBytes() * l2.associativity()),
              4096u);
    EXPECT_FALSE(btb.lookup(0x1234).has_value());
}

TEST(Table1, LatenciesAreOrdered)
{
    const CoreConfig cfg;
    EXPECT_LT(cfg.l1dHitCycles, cfg.l2HitCycles);
    EXPECT_LT(cfg.l2HitCycles, cfg.memoryCycles);
    EXPECT_LT(cfg.ifetchL2Cycles, cfg.ifetchMemoryCycles);
    EXPECT_GE(cfg.mulCycles, 2u);
    EXPECT_GE(cfg.robEntries, 2 * cfg.issueWidth);
}

} // namespace
} // namespace bpsim
