/** @file Tests for the CACTI-lite SRAM access-time model. */

#include "delay/sram_model.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

SramGeometry
pht(std::uint64_t entries)
{
    SramGeometry g;
    g.entries = entries;
    g.bitsPerEntry = 2;
    return g;
}

TEST(SramModel, PaperAnchorSingleCycleAt1KEntries)
{
    // Jimenez/Keckler/Lin (MICRO-33): the largest PHT accessible in
    // one 8 FO4 cycle has 1K entries; the paper optimistically grants
    // the 2K-entry quick predictor a single cycle too (Section 4.1.2).
    SramModel m;
    ClockModel clk;
    EXPECT_EQ(m.accessCycles(pht(1024), clk), 1u);
    EXPECT_EQ(m.accessCycles(pht(2048), clk), 1u);
    EXPECT_GE(m.accessCycles(pht(4096), clk), 2u);
}

TEST(SramModel, PaperAnchorLargeBudgets)
{
    // Table 2 shape: two-bit-counter arrays land on 2/3/4/5/7/11
    // cycles at 16/32/64/128/256/512 KB.
    SramModel m;
    ClockModel clk;
    EXPECT_EQ(m.accessCycles(pht(64 * 1024), clk), 2u);   // 16 KB
    EXPECT_EQ(m.accessCycles(pht(128 * 1024), clk), 3u);  // 32 KB
    EXPECT_EQ(m.accessCycles(pht(256 * 1024), clk), 4u);  // 64 KB
    EXPECT_EQ(m.accessCycles(pht(512 * 1024), clk), 5u);  // 128 KB
    EXPECT_EQ(m.accessCycles(pht(1024 * 1024), clk), 7u); // 256 KB
    EXPECT_EQ(m.accessCycles(pht(2048 * 1024), clk), 11u); // 512 KB
}

TEST(SramModel, MonotoneInEntries)
{
    SramModel m;
    double prev = 0.0;
    for (unsigned lg = 8; lg <= 24; ++lg) {
        const double t = m.accessFo4(pht(std::uint64_t{1} << lg));
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(SramModel, MonotoneInWidthAndPorts)
{
    SramModel m;
    SramGeometry narrow = pht(1 << 14);
    SramGeometry wide = narrow;
    wide.bitsPerEntry = 64;
    EXPECT_GT(m.accessFo4(wide), m.accessFo4(narrow));

    SramGeometry dual = narrow;
    dual.ports = 2;
    EXPECT_GT(m.accessFo4(dual), m.accessFo4(narrow));
}

TEST(SramModel, MaxEntriesForCyclesIsConsistent)
{
    SramModel m;
    ClockModel clk;
    for (unsigned cycles : {1u, 2u, 4u, 8u}) {
        const std::uint64_t e = m.maxEntriesForCycles(2, cycles, clk);
        ASSERT_GT(e, 0u);
        EXPECT_LE(m.accessCycles(pht(e), clk), cycles);
        EXPECT_GT(m.accessCycles(pht(e * 2), clk), cycles);
    }
}

TEST(SramGeometry, ByteAccounting)
{
    EXPECT_EQ(pht(1024).totalBits(), 2048u);
    EXPECT_EQ(pht(1024).totalBytes(), 256u);
    SramGeometry g;
    g.entries = 3;
    g.bitsPerEntry = 3;
    EXPECT_EQ(g.totalBytes(), 2u); // 9 bits round up
}

/** Property: cycles never decrease as capacity grows, across widths. */
class SramWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SramWidthTest, CyclesMonotoneInCapacity)
{
    SramModel m;
    ClockModel clk;
    unsigned prev = 0;
    for (unsigned lg = 6; lg <= 22; ++lg) {
        SramGeometry g;
        g.entries = std::uint64_t{1} << lg;
        g.bitsPerEntry = GetParam();
        const unsigned c = m.accessCycles(g, clk);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SramWidthTest,
                         ::testing::Values(1u, 2u, 8u, 32u, 256u));

} // namespace
} // namespace bpsim
