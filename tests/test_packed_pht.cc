/**
 * @file
 * Golden equivalence of the bit-packed counter tables against the
 * byte-per-counter reference classes they replaced. Every operation
 * the predictors perform — init, update, taken, weak, value, set —
 * is driven by the same pseudorandom stream on both representations
 * and must agree at every step; the fault-injection field builders
 * must expose the same (count, bits) shape either way.
 */

#include "common/packed_pht.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "robust/state_visitor.hh"

namespace bpsim {
namespace {

TEST(PackedPhtStorage, InitReplicatesEveryCounter)
{
    for (std::uint8_t init = 0; init < 4; ++init) {
        PackedPhtStorage p(37, init); // non-multiple-of-4 size
        ASSERT_EQ(p.size(), 37u);
        for (std::size_t i = 0; i < p.size(); ++i)
            ASSERT_EQ(p.value(i), init) << "init " << int(init)
                                        << " counter " << i;
    }
}

TEST(PackedPhtStorage, MatchesTwoBitCounterUnderRandomOps)
{
    const std::size_t n = 1021; // prime: exercises all byte lanes
    PackedPhtStorage packed(n, 1);
    std::vector<TwoBitCounter> ref(n); // TwoBitCounter inits to 1

    Rng rng(0xbeefcafe);
    for (int step = 0; step < 200000; ++step) {
        const std::size_t i = rng.next() % n;
        switch (rng.next() % 3) {
          case 0: {
              const bool t = rng.next() & 1;
              packed.update(i, t);
              ref[i].update(t);
              break;
          }
          case 1: {
              const std::uint8_t v = rng.next() & 3;
              packed.set(i, v);
              ref[i].set(v);
              break;
          }
          default:
            break;
        }
        ASSERT_EQ(packed.value(i), ref[i].value()) << "step " << step;
        ASSERT_EQ(packed.taken(i), ref[i].taken()) << "step " << step;
        ASSERT_EQ(packed.weak(i), ref[i].weak()) << "step " << step;
    }
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(packed.value(i), ref[i].value()) << "final " << i;
}

TEST(PackedPhtStorage, NeighbourCountersDoNotInterfere)
{
    PackedPhtStorage p(8, 0);
    p.set(2, 3);
    EXPECT_EQ(p.value(1), 0);
    EXPECT_EQ(p.value(2), 3);
    EXPECT_EQ(p.value(3), 0);
    // Saturation cannot carry into a neighbour's lane.
    p.update(2, true);
    EXPECT_EQ(p.value(2), 3);
    EXPECT_EQ(p.value(3), 0);
    p.set(2, 0);
    p.update(2, false);
    EXPECT_EQ(p.value(2), 0);
    EXPECT_EQ(p.value(1), 0);
}

TEST(PackedPhtStorage, ChargesExactlyTwoBitsPerCounter)
{
    EXPECT_EQ(PackedPhtStorage(4096).storageBits(), 8192u);
    EXPECT_EQ(PackedPhtStorage(37).storageBits(), 74u);
}

TEST(PackedSatStorage, MatchesSatCounterAtEveryWidth)
{
    for (unsigned bits = 1; bits <= 8; ++bits) {
        const std::size_t n = 257; // odd: straddles word boundaries
        const std::uint8_t init = static_cast<std::uint8_t>(
            (1u << bits) / 2 > 0 ? (1u << bits) / 2 - 1 : 0);
        PackedSatStorage packed(n, bits, init);
        std::vector<SatCounter> ref(n, SatCounter(bits, init));

        Rng rng(0x5eed0000 + bits);
        for (int step = 0; step < 50000; ++step) {
            const std::size_t i = rng.next() % n;
            if (rng.next() & 1) {
                const bool t = rng.next() & 1;
                packed.update(i, t);
                ref[i].update(t);
            } else {
                const std::uint8_t v = static_cast<std::uint8_t>(
                    rng.next() & packed.maxValue());
                packed.set(i, v);
                ref[i].set(v);
            }
            ASSERT_EQ(packed.value(i), ref[i].value())
                << "bits " << bits << " step " << step;
            ASSERT_EQ(packed.taken(i), ref[i].taken())
                << "bits " << bits << " step " << step;
            ASSERT_EQ(packed.weak(i), ref[i].weak())
                << "bits " << bits << " step " << step;
        }
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(packed.value(i), ref[i].value())
                << "bits " << bits << " final " << i;
    }
}

TEST(PackedSatStorage, StraddlingAccessKeepsNeighboursIntact)
{
    // 3-bit counters: counter 21 occupies bits 63..65, straddling the
    // first word boundary.
    PackedSatStorage p(64, 3, 0);
    p.set(21, 7);
    EXPECT_EQ(p.value(21), 7);
    EXPECT_EQ(p.value(20), 0);
    EXPECT_EQ(p.value(22), 0);
    p.set(20, 5);
    p.set(22, 6);
    EXPECT_EQ(p.value(21), 7);
    p.set(21, 2);
    EXPECT_EQ(p.value(20), 5);
    EXPECT_EQ(p.value(21), 2);
    EXPECT_EQ(p.value(22), 6);
}

TEST(PackedSatStorage, ChargesExactlyBitsPerCounter)
{
    EXPECT_EQ(PackedSatStorage(1024, 3).storageBits(), 3072u);
    EXPECT_EQ(PackedSatStorage(7, 5).storageBits(), 35u);
}

/** The packed field builders must present the exact shape of their
 *  byte-per-counter counterparts so fault-plan bit addressing is
 *  representation-independent. */
TEST(PackedFields, SameShapeAndBitsAsReferenceFields)
{
    const std::size_t n = 129;
    PackedPhtStorage packed(n, 1);
    std::vector<TwoBitCounter> ref(n);
    auto pf = robust::packedCounterField("pht", packed);
    auto rf = robust::counterField("pht", ref);
    EXPECT_EQ(pf.count, rf.count);
    EXPECT_EQ(pf.bits, rf.bits);
    EXPECT_EQ(pf.totalBits(), rf.totalBits());
    // Raw patterns round-trip identically through either store/load.
    for (std::uint64_t v = 0; v < 4; ++v) {
        pf.store(5, v);
        rf.store(5, v);
        EXPECT_EQ(pf.load(5), rf.load(5));
    }

    PackedSatStorage packedSat(n, 3, 3);
    std::vector<SatCounter> refSat(n, SatCounter(3, 3));
    auto psf = robust::packedSatField("lpht", packedSat);
    auto rsf = robust::satCounterField("lpht", refSat, 3);
    EXPECT_EQ(psf.count, rsf.count);
    EXPECT_EQ(psf.bits, rsf.bits);
    for (std::uint64_t v = 0; v < 8; ++v) {
        psf.store(128, v);
        rsf.store(128, v);
        EXPECT_EQ(psf.load(128), rsf.load(128));
    }
}

} // namespace
} // namespace bpsim
