/**
 * @file
 * Tests for the protection-policy layer (src/robust/protection):
 * check-bit math and the taxes it implies, word-level repair
 * semantics (parity invalidation, SEC-DED correction, laundering),
 * the ProtectedPredictor decorator, and the factory's protected
 * build/latency paths.
 */

#include "robust/protection.hh"

#include <gtest/gtest.h>

#include <vector>

#include "core/factory.hh"
#include "core/runner.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

using robust::ProtectionConfig;
using robust::ProtectionLayer;
using robust::ProtectionPolicy;

ProtectionConfig
config(ProtectionPolicy policy, unsigned word_bits = 64)
{
    ProtectionConfig cfg;
    cfg.policy = policy;
    cfg.wordBits = word_bits;
    return cfg;
}

TEST(ProtectionMath, SecdedCheckBitsMatchHamming)
{
    // Hamming r with 2^r >= W + r + 1, plus the DED parity bit.
    EXPECT_EQ(robust::secdedCheckBits(8), 5u);
    EXPECT_EQ(robust::secdedCheckBits(16), 6u);
    EXPECT_EQ(robust::secdedCheckBits(32), 7u);
    EXPECT_EQ(robust::secdedCheckBits(64), 8u);
    EXPECT_EQ(robust::secdedCheckBits(128), 9u);
}

TEST(ProtectionMath, CheckBitsPerPolicy)
{
    EXPECT_EQ(robust::protectionCheckBits(
                  config(ProtectionPolicy::None)),
              0u);
    EXPECT_EQ(robust::protectionCheckBits(
                  config(ProtectionPolicy::ParityInvalidate)),
              1u);
    EXPECT_EQ(robust::protectionCheckBits(
                  config(ProtectionPolicy::SecdedCorrect)),
              8u);
    // Scrubbing stores the same code words; only the check timing
    // differs.
    EXPECT_EQ(robust::protectionCheckBits(
                  config(ProtectionPolicy::Scrub)),
              8u);
}

TEST(ProtectionMath, EffectiveBudgetPaysTheStorageTax)
{
    const std::size_t budget = 64 * 1024;
    EXPECT_EQ(robust::protectedEffectiveBudget(
                  budget, config(ProtectionPolicy::None)),
              budget);
    // SEC-DED at W=64: 8 check bits per 64 data bits = 12.5%.
    EXPECT_EQ(robust::protectedEffectiveBudget(
                  budget, config(ProtectionPolicy::SecdedCorrect)),
              budget * 64 / 72);
    // Parity: 1 bit per 64.
    EXPECT_EQ(robust::protectedEffectiveBudget(
                  budget, config(ProtectionPolicy::ParityInvalidate)),
              budget * 64 / 65);
    // Never collapses to nothing.
    EXPECT_GE(robust::protectedEffectiveBudget(
                  1, config(ProtectionPolicy::SecdedCorrect)),
              64u);
}

TEST(ProtectionMath, CheckBitsTotalCoversEveryWord)
{
    const auto cfg = config(ProtectionPolicy::SecdedCorrect);
    EXPECT_EQ(robust::protectionCheckBitsTotal(0, cfg), 0u);
    EXPECT_EQ(robust::protectionCheckBitsTotal(64, cfg), 8u);
    // Partial trailing word still needs a full set of check bits.
    EXPECT_EQ(robust::protectionCheckBitsTotal(65, cfg), 16u);
    EXPECT_EQ(robust::protectionCheckBitsTotal(
                  100, config(ProtectionPolicy::None)),
              0u);
}

TEST(ProtectionMath, OnlyAccessPathPoliciesAddFo4)
{
    EXPECT_EQ(robust::protectionCheckFo4(
                  config(ProtectionPolicy::None)),
              0.0);
    EXPECT_EQ(
        robust::protectionCheckFo4(config(ProtectionPolicy::Scrub)),
        0.0);
    const double parity = robust::protectionCheckFo4(
        config(ProtectionPolicy::ParityInvalidate));
    const double secded = robust::protectionCheckFo4(
        config(ProtectionPolicy::SecdedCorrect));
    EXPECT_GT(parity, 0.0);
    EXPECT_GT(secded, parity);
}

/** Fixture driving exact flip patterns through a layer over a small
 *  wordArrayField: 8-bit elements, 16-bit ECC words => two elements
 *  per word ({0,1} and {2,3}). */
struct LayerTest
{
    explicit LayerTest(ProtectionPolicy policy)
        : layer(config(policy, 16)),
          field(robust::wordArrayField("t.field", values, 8))
    {
    }

    /** Inject one flip the way the FaultInjector would: record it,
     *  then apply it to the storage. */
    void
    flip(std::size_t elem, unsigned bit)
    {
        const std::uint64_t before = field.load(elem);
        layer.recordFlip(field, elem, bit, before);
        field.store(elem, before ^ (std::uint64_t{1} << bit));
    }

    std::vector<std::uint64_t> values{0x55, 0x55, 0x55, 0x55};
    ProtectionLayer layer;
    robust::StateField field;
};

TEST(ProtectionLayer, ParityInvalidatesOddCorruption)
{
    LayerTest t(ProtectionPolicy::ParityInvalidate);
    t.flip(0, 1);
    EXPECT_EQ(t.layer.pendingWords(), 1u);
    t.layer.repair();
    // Parity can only detect-and-reset: both elements of the word go
    // to the field's reset value, the untouched word stays put.
    EXPECT_EQ(t.values[0], t.field.resetValue);
    EXPECT_EQ(t.values[1], t.field.resetValue);
    EXPECT_EQ(t.values[2], 0x55u);
    EXPECT_EQ(t.layer.stats().invalidatedWords, 1u);
    EXPECT_EQ(t.layer.stats().invalidatedElements, 2u);
    EXPECT_EQ(t.layer.pendingWords(), 0u);
}

TEST(ProtectionLayer, ParityMissesEvenCorruption)
{
    LayerTest t(ProtectionPolicy::ParityInvalidate);
    t.flip(0, 1);
    t.flip(1, 2); // same 16-bit word, so the word has 2 flipped bits
    t.layer.repair();
    EXPECT_EQ(t.values[0], 0x55u ^ 0x02u);
    EXPECT_EQ(t.values[1], 0x55u ^ 0x04u);
    EXPECT_EQ(t.layer.stats().undetectedWords, 1u);
    EXPECT_EQ(t.layer.stats().invalidatedWords, 0u);
    // The ledger keeps the word: one MORE flip makes parity odd.
    EXPECT_EQ(t.layer.pendingWords(), 1u);
    t.flip(0, 3);
    t.layer.repair();
    EXPECT_EQ(t.values[0], t.field.resetValue);
    EXPECT_EQ(t.layer.stats().invalidatedWords, 1u);
}

TEST(ProtectionLayer, SecdedCorrectsSingleBit)
{
    LayerTest t(ProtectionPolicy::SecdedCorrect);
    t.flip(2, 6);
    EXPECT_NE(t.values[2], 0x55u);
    t.layer.repair();
    EXPECT_EQ(t.values[2], 0x55u); // restored, not reset
    EXPECT_EQ(t.layer.stats().correctedBits, 1u);
    EXPECT_EQ(t.layer.stats().invalidatedWords, 0u);
    EXPECT_EQ(t.layer.pendingWords(), 0u);
}

TEST(ProtectionLayer, SecdedInvalidatesDoubleAndMissesTriple)
{
    LayerTest t(ProtectionPolicy::SecdedCorrect);
    t.flip(0, 1);
    t.flip(1, 2);
    t.layer.repair();
    EXPECT_EQ(t.values[0], t.field.resetValue);
    EXPECT_EQ(t.values[1], t.field.resetValue);
    EXPECT_EQ(t.layer.stats().invalidatedWords, 1u);

    t.flip(2, 0);
    t.flip(2, 1);
    t.flip(3, 2);
    t.layer.repair();
    // Three flips in one word alias past SEC-DED: values keep the
    // corruption.
    EXPECT_EQ(t.values[2], 0x55u ^ 0x03u);
    EXPECT_EQ(t.values[3], 0x55u ^ 0x04u);
    EXPECT_EQ(t.layer.stats().undetectedWords, 1u);
}

TEST(ProtectionLayer, OverwrittenElementsAreLaundered)
{
    LayerTest t(ProtectionPolicy::SecdedCorrect);
    t.flip(0, 1);
    // The predictor trains over the flipped element before the check
    // runs: the write re-encoded the word, so there is nothing left
    // to repair.
    t.field.store(0, 0x33);
    t.layer.repair();
    EXPECT_EQ(t.values[0], 0x33u);
    EXPECT_EQ(t.layer.stats().launderedElements, 1u);
    EXPECT_EQ(t.layer.stats().correctedBits, 0u);
    EXPECT_EQ(t.layer.pendingWords(), 0u);
}

TEST(ProtectedPredictor, RateZeroIsTransparent)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 60000, 3);

    auto clean = makePredictor(PredictorKind::Gshare, 64 * 1024);
    const AccuracyResult base = runAccuracy(*clean, trace);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 0.0;
    // Build the inner at the FULL budget (not via the factory's
    // protected path) so accuracy is comparable bit for bit.
    robust::ProtectedPredictor pred(
        makePredictor(PredictorKind::Gshare, 64 * 1024), plan,
        config(ProtectionPolicy::SecdedCorrect));
    const AccuracyResult r = runAccuracy(pred, trace);

    EXPECT_EQ(r.mispredictions, base.mispredictions);
    EXPECT_EQ(pred.protectionStats().injectedFlips, 0u);
    EXPECT_EQ(pred.protectionStats().correctedBits, 0u);
}

TEST(ProtectedPredictor, SecdedRepairsAndIsDeterministic)
{
    const auto w = makeWorkload("186.crafty");
    const TraceBuffer trace = generateTrace(*w, 60000, 5);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-3;
    plan.intervalBranches = 256;
    plan.seed = 99;

    AccuracyResult runs[2];
    robust::ProtectionStats stats[2];
    for (int i = 0; i < 2; ++i) {
        auto pred = makeProtectedPredictor(
            PredictorKind::Gshare, 64 * 1024,
            config(ProtectionPolicy::SecdedCorrect), plan);
        runs[i] = runAccuracy(*pred, trace);
        stats[i] = pred->protectionStats();
    }
    EXPECT_EQ(runs[0].mispredictions, runs[1].mispredictions);
    EXPECT_EQ(stats[0].injectedFlips, stats[1].injectedFlips);
    EXPECT_EQ(stats[0].correctedBits, stats[1].correctedBits);
    EXPECT_GT(stats[0].injectedFlips, 0u);
    // Checks run right after every injection event, so single-bit
    // words dominate and most flips get corrected.
    EXPECT_GT(stats[0].correctedBits, 0u);
    EXPECT_GT(stats[0].repairEvents, 0u);
    EXPECT_EQ(stats[0].scrubEvents, 0u);
}

TEST(ProtectedPredictor, ScrubRunsAtItsOwnCadence)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 60000, 3);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-3;
    plan.intervalBranches = 256;
    plan.seed = 7;
    ProtectionConfig cfg = config(ProtectionPolicy::Scrub);
    cfg.scrubIntervalBranches = 2048;

    auto pred = makeProtectedPredictor(PredictorKind::Gshare,
                                       64 * 1024, cfg, plan);
    runAccuracy(*pred, trace);
    const robust::ProtectionStats &s = pred->protectionStats();
    // One update per conditional branch, one scrub pass per full
    // interval; every repair pass is a scrub pass (scrubbing never
    // checks on access).
    EXPECT_GT(trace.condBranches(), 2048u);
    EXPECT_EQ(s.scrubEvents, trace.condBranches() / 2048);
    EXPECT_EQ(s.repairEvents, s.scrubEvents);
    EXPECT_GT(s.injectedFlips, 0u);
}

TEST(ProtectedPredictor, ExposedBitsStillMatchStorageBits)
{
    robust::FaultPlan plan;
    auto pred = makeProtectedPredictor(
        PredictorKind::Perceptron, 64 * 1024,
        config(ProtectionPolicy::SecdedCorrect), plan);

    std::size_t total = 0;
    class Counting : public robust::StateVisitor
    {
      public:
        explicit Counting(std::size_t &total) : total_(total) {}
        void
        visit(const robust::StateField &f) override
        {
            total_ += f.totalBits();
        }

      private:
        std::size_t &total_;
    } counter(total);
    pred->visitState(counter);
    EXPECT_EQ(total, pred->storageBits());
    // The check bits are the tax on top, not addressable state.
    EXPECT_GT(pred->protectionBitsTotal(), 0u);
    // The effective budget shrank to make room for them.
    EXPECT_LT(pred->storageBits(), 64u * 1024u * 8u);
}

TEST(ProtectedFactory, NonePolicyMatchesPlainLatency)
{
    for (PredictorKind kind :
         {PredictorKind::Gshare, PredictorKind::Perceptron,
          PredictorKind::MultiComponent}) {
        for (std::size_t budget : {16u * 1024u, 64u * 1024u}) {
            EXPECT_EQ(protectedPredictorLatencyCycles(
                          kind, budget,
                          config(ProtectionPolicy::None)),
                      predictorLatencyCycles(kind, budget))
                << kindName(kind) << " @ " << budget;
        }
    }
}

TEST(ProtectedFactory, LatencyReflectsBothTaxes)
{
    // The delay tax has two opposing parts: check logic adds FO4s,
    // but the shrunken effective table loses decode/wire FO4s. Both
    // must flow through; the net can go either way, so pin the
    // inputs instead of the sign — the protected geometry carries
    // check bits and the protected latency is within one cycle of
    // an explicitly-built equivalent.
    const std::size_t budget = 256 * 1024;
    const auto cfg = config(ProtectionPolicy::SecdedCorrect);
    const unsigned plain =
        predictorLatencyCycles(PredictorKind::Gshare, budget);
    const unsigned prot = protectedPredictorLatencyCycles(
        PredictorKind::Gshare, budget, cfg);
    const unsigned eff_plain = predictorLatencyCycles(
        PredictorKind::Gshare,
        robust::protectedEffectiveBudget(budget, cfg));
    // Protected latency is bounded by the two unprotected anchors:
    // at least the smaller table's bare latency, at most the full
    // table's latency plus the check logic (rounded up a cycle).
    EXPECT_GE(prot, eff_plain);
    EXPECT_LE(prot, plain + 1);
}

TEST(ProtectedFactory, FetchPredictorRunsUnderTiming)
{
    const auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 30000, 3);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-3;
    plan.intervalBranches = 256;
    plan.seed = 11;

    CoreConfig cfg;
    auto fp = makeProtectedFetchPredictor(
        PredictorKind::Gshare, 64 * 1024, DelayMode::Overriding,
        config(ProtectionPolicy::SecdedCorrect), plan);
    const SimResult r = runTiming(cfg, *fp, trace);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
}

} // namespace
} // namespace bpsim
