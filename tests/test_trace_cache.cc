/**
 * @file
 * Tests for the on-disk trace cache: miss-then-hit, corruption
 * recovery, format-version invalidation, key separation, and the
 * SuiteTraces hit/miss accounting the benches surface as metrics.
 */

#include "trace/trace_cache.hh"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "parallel/cell_pool.hh"
#include "trace/shared_trace_pool.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_io.hh"

namespace bpsim {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty cache directory under the test temp dir. */
std::string
freshCacheDir(const char *name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Deterministic synthetic trace: @p ops ops, every third a branch. */
TraceBuffer
syntheticTrace(Counter ops, std::uint64_t seed)
{
    TraceBuffer t;
    for (Counter i = 0; i < ops; ++i) {
        MicroOp op;
        if (i % 3 == 0) {
            op.cls = InstClass::CondBranch;
            op.pc = 0x1000 + ((i * 7 + seed) & 0xfff);
            op.taken = ((i + seed) & 3) != 0;
        } else {
            op.cls = InstClass::IntAlu;
            op.pc = 0x4000 + i;
        }
        t.push(op);
    }
    return t;
}

TEST(TraceCache, DisabledCacheMissesAndStoresNothing)
{
    TraceCache cache; // default: disabled
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.load("wl", 100, 1).has_value());
    EXPECT_FALSE(cache.store("wl", 100, 1, syntheticTrace(100, 1)));

    int generated = 0;
    bool hit = true;
    const TraceBuffer t = cache.fetch(
        "wl", 100, 1,
        [&] {
            ++generated;
            return syntheticTrace(100, 1);
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_EQ(t.size(), 100u);
}

TEST(TraceCache, MissGeneratesAndStoresThenHits)
{
    const std::string dir = freshCacheDir("trace_cache_hit");
    TraceCache cache(dir);
    EXPECT_TRUE(cache.enabled());

    int generated = 0;
    const auto generate = [&] {
        ++generated;
        return syntheticTrace(120, 7);
    };

    bool hit = true;
    const TraceBuffer cold = cache.fetch("176.gcc", 120, 7, generate,
                                         &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_TRUE(fs::exists(cache.entryPath("176.gcc", 120, 7)));

    const TraceBuffer warm = cache.fetch("176.gcc", 120, 7, generate,
                                         &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(generated, 1); // generator not invoked again

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(warm[i].pc, cold[i].pc);
        EXPECT_EQ(warm[i].taken, cold[i].taken);
        EXPECT_EQ(static_cast<int>(warm[i].cls),
                  static_cast<int>(cold[i].cls));
    }
    fs::remove_all(dir);
}

TEST(TraceCache, CorruptEntryIsIgnoredAndHealedByRegeneration)
{
    const std::string dir = freshCacheDir("trace_cache_corrupt");
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("wl", 80, 3, syntheticTrace(80, 3)));
    const std::string path = cache.entryPath("wl", 80, 3);
    ASSERT_TRUE(fs::exists(path));

    // Stomp the entry with garbage: load must reject it but leave
    // the file alone — unlinking by path would race a concurrent
    // writer that already renamed a good entry into place.
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file", f);
    std::fclose(f);
    EXPECT_FALSE(cache.load("wl", 80, 3).has_value());
    EXPECT_TRUE(fs::exists(path));

    // fetch regenerates and atomically overwrites the corrupt file.
    int generated = 0;
    bool hit = true;
    cache.fetch(
        "wl", 80, 3,
        [&] {
            ++generated;
            return syntheticTrace(80, 3);
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_TRUE(cache.load("wl", 80, 3).has_value());
    fs::remove_all(dir);
}

TEST(TraceCache, WrongLengthEntryIsRejected)
{
    const std::string dir = freshCacheDir("trace_cache_len");
    TraceCache cache(dir);
    // A valid trace file whose length does not match the key: the
    // exact-length check must treat it as corrupt (a miss; the file
    // stays for a later store to overwrite).
    ASSERT_TRUE(cache.store("wl", 200, 1, syntheticTrace(50, 1)));
    EXPECT_FALSE(cache.load("wl", 200, 1).has_value());
    EXPECT_TRUE(fs::exists(cache.entryPath("wl", 200, 1)));
    fs::remove_all(dir);
}

TEST(TraceCache, FormatVersionBumpInvalidates)
{
    const std::string dir = freshCacheDir("trace_cache_version");
    TraceCache v1(dir, 1);
    TraceCache v2(dir, 2);
    EXPECT_NE(v1.entryPath("wl", 60, 2), v2.entryPath("wl", 60, 2));

    ASSERT_TRUE(v1.store("wl", 60, 2, syntheticTrace(60, 2)));
    EXPECT_TRUE(v1.load("wl", 60, 2).has_value());
    EXPECT_FALSE(v2.load("wl", 60, 2).has_value());
    fs::remove_all(dir);
}

TEST(TraceCache, UnsupportedVersionEntryIsIgnoredAndHealed)
{
    const std::string dir = freshCacheDir("trace_cache_futurever");
    TraceCache cache(dir);
    const std::string path = cache.entryPath("wl", 70, 5);

    // An entry whose trace header declares a version this build does
    // not understand (e.g. written by a newer binary): must read as
    // a miss, stay on disk, and be atomically replaced on store.
    fs::create_directories(dir);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const unsigned char header[24] = {'B', 'P', 'S', 'T', 'R', 'A',
                                      'C', 'E', 99,  0,   0,   0};
    ASSERT_EQ(sizeof(header),
              std::fwrite(header, 1, sizeof(header), f));
    std::fclose(f);

    EXPECT_FALSE(cache.load("wl", 70, 5).has_value());
    EXPECT_TRUE(fs::exists(path));

    int generated = 0;
    cache.fetch("wl", 70, 5, [&] {
        ++generated;
        return syntheticTrace(70, 5);
    });
    EXPECT_EQ(generated, 1);
    const auto healed = cache.load("wl", 70, 5);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(healed->size(), 70u);
    fs::remove_all(dir);
}

TEST(TraceCache, V2EntryMigratesToV3OnFirstLoad)
{
    // An entry left by an older (v2-format) build: the first load
    // under the current version decodes it, re-stores it as v3 and
    // serves it as a hit — no regeneration, and the v2 file stays
    // for older binaries sharing the cache dir.
    const std::string dir = freshCacheDir("trace_cache_migrate");
    TraceCache old(dir, 2);
    ASSERT_TRUE(old.store("wl", 90, 4, syntheticTrace(90, 4)));

    TraceCache cache(dir);
    ASSERT_GE(cache.formatVersion(), 3);
    ASSERT_FALSE(fs::exists(cache.entryPath("wl", 90, 4)));

    int generated = 0;
    bool hit = false;
    const TraceBuffer migrated = cache.fetch(
        "wl", 90, 4,
        [&] {
            ++generated;
            return syntheticTrace(90, 4);
        },
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(generated, 0);

    const TraceBuffer expect = syntheticTrace(90, 4);
    ASSERT_EQ(migrated.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(migrated[i].pc, expect[i].pc);
        EXPECT_EQ(migrated[i].taken, expect[i].taken);
    }

    // Both entries exist now; the next load maps the v3 one.
    EXPECT_TRUE(fs::exists(cache.entryPath("wl", 90, 4)));
    EXPECT_TRUE(fs::exists(cache.entryPath("wl", 90, 4, 2)));
    const auto warm = cache.load("wl", 90, 4);
    ASSERT_TRUE(warm.has_value());
    EXPECT_FALSE(warm->opsMaterialized()); // v3: mapped, not decoded
    fs::remove_all(dir);
}

TEST(TraceCache, CacheEntriesShrinkSuiteAtLeast2x)
{
    // The compression claim, measured on the real 12-workload suite:
    // cache entries (columnar v3: delta+varint op stream plus the
    // raw branch columns) must be at least half the size of the same
    // traces in the v1 fixed-record format.
    const std::string dir = freshCacheDir("trace_cache_shrink");
    const Counter ops = 20000;
    const SuiteTraces suite(ops, 42, nullptr, TraceCache(dir));
    TraceCache cache(dir);

    std::uintmax_t rawTotal = 0, packedTotal = 0;
    const std::string rawPath = dir + "/raw_tmp.bpt";
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const std::string entry =
            cache.entryPath(suite.name(i), ops, 42);
        ASSERT_TRUE(fs::exists(entry)) << suite.name(i);
        packedTotal += fs::file_size(entry);
        writeTrace(suite.trace(i), rawPath);
        rawTotal += fs::file_size(rawPath);
    }
    EXPECT_GE(rawTotal, 2 * packedTotal)
        << "raw " << rawTotal << " vs compressed " << packedTotal;
    fs::remove_all(dir);
}

TEST(TraceCache, RacingWritersAndACorruptorConverge)
{
    // Many processes sharing one cache directory are modeled by many
    // threads with *independent* TraceCache objects racing fetch()
    // on one key, while a corruptor keeps stomping the entry with
    // garbage. The contract under fire:
    //   - every fetch returns the correct trace (corruption is never
    //     served: entries are validated, rejected ones regenerate),
    //   - nobody unlinks concurrently-renamed good entries, and
    //   - after the dust settles one valid entry remains.
    const std::string dir = freshCacheDir("trace_cache_race");
    const TraceBuffer expect = syntheticTrace(400, 9);
    const std::string entry =
        TraceCache(dir).entryPath("wl", 400, 9);

    std::atomic<bool> stop{false};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < 6; ++t) {
        writers.emplace_back([&] {
            TraceCache mine(dir); // own handle, like own process
            for (int round = 0; round < 25; ++round) {
                const TraceBuffer got = mine.fetch(
                    "wl", 400, 9,
                    [&] { return syntheticTrace(400, 9); });
                if (got.size() != expect.size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < got.size(); ++i)
                    if (got[i].pc != expect[i].pc ||
                        got[i].taken != expect[i].taken) {
                        ++mismatches;
                        break;
                    }
            }
        });
    }
    std::thread corruptor([&] {
        while (!stop.load()) {
            if (std::FILE *f = std::fopen(entry.c_str(), "wb")) {
                std::fputs("garbage, not a trace", f);
                std::fclose(f);
            }
            std::this_thread::yield();
        }
    });
    for (auto &t : writers)
        t.join();
    stop = true;
    corruptor.join();

    EXPECT_EQ(mismatches.load(), 0);
    // Heal whatever the corruptor's final stomp left behind.
    TraceCache cache(dir);
    const TraceBuffer final_ = cache.fetch(
        "wl", 400, 9, [&] { return syntheticTrace(400, 9); });
    EXPECT_EQ(final_.size(), expect.size());
    ASSERT_TRUE(cache.load("wl", 400, 9).has_value());
    fs::remove_all(dir);
}

/** Occurrences of @p needle in @p hay. */
std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t at = hay.find(needle);
         at != std::string::npos; at = hay.find(needle, at + 1))
        ++n;
    return n;
}

TEST(TraceCache, UnwritableCacheDegradesGracefullyAndWarnsOnce)
{
    // An unwritable cache is a degraded environment, not a failed
    // run: stores fail, fetches keep working from memory, and the
    // warning fires once for the condition — not once per trace.
    const std::string dir = freshCacheDir("trace_cache_readonly");
    // A regular file where the cache directory should be: every
    // store hits ENOTDIR on the way in, even when running as root
    // (where a chmod'd directory would not stop writes).
    const std::string blocker = dir + "/blocker";
    std::FILE *f = std::fopen(blocker.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    TraceCache::resetStoreFailuresForTest();
    TraceCache cache(blocker + "/cache");
    EXPECT_TRUE(cache.enabled());

    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(cache.store("wl", 60, 1, syntheticTrace(60, 1)));
    EXPECT_FALSE(cache.store("wl", 60, 2, syntheticTrace(60, 2)));

    // fetch degrades to generate-every-time but still serves the
    // right trace.
    int generated = 0;
    bool hit = true;
    const TraceBuffer t = cache.fetch(
        "wl", 60, 3,
        [&] {
            ++generated;
            return syntheticTrace(60, 3);
        },
        &hit);
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_EQ(t.size(), 60u);

    EXPECT_EQ(TraceCache::storeFailures(), 3u);
    EXPECT_EQ(countOccurrences(err, "continuing without the cache"),
              1u)
        << err;

    TraceCache::resetStoreFailuresForTest();
    fs::remove_all(dir);
}

TEST(TraceCache, ReadOnlyDirectoryFailsStoreNotFetch)
{
    if (::geteuid() == 0)
        GTEST_SKIP() << "root ignores directory write permissions";
    const std::string dir = freshCacheDir("trace_cache_ro_dir");
    fs::permissions(dir, fs::perms::owner_read |
                             fs::perms::owner_exec);
    TraceCache::resetStoreFailuresForTest();
    TraceCache cache(dir);

    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(cache.store("wl", 40, 1, syntheticTrace(40, 1)));
    const TraceBuffer t = cache.fetch(
        "wl", 40, 2, [&] { return syntheticTrace(40, 2); });
    const std::string err =
        ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(t.size(), 40u);
    EXPECT_GE(TraceCache::storeFailures(), 2u);
    EXPECT_EQ(countOccurrences(err, "continuing without the cache"),
              1u)
        << err;

    TraceCache::resetStoreFailuresForTest();
    fs::permissions(dir, fs::perms::owner_all);
    fs::remove_all(dir);
}

TEST(TraceCache, KeysSeparateWorkloadOpsAndSeed)
{
    TraceCache cache("/tmp/unused");
    const std::string base = cache.entryPath("wl", 100, 1);
    EXPECT_NE(cache.entryPath("other", 100, 1), base);
    EXPECT_NE(cache.entryPath("wl", 101, 1), base);
    EXPECT_NE(cache.entryPath("wl", 100, 2), base);
}

TEST(TraceCacheSuite, SuiteTracesCountsHitsAndMisses)
{
    const std::string dir = freshCacheDir("trace_cache_suite");

    // Cold: every workload generated and stored.
    const SuiteTraces cold(4000, 13, nullptr, TraceCache(dir));
    EXPECT_EQ(cold.cacheMisses(), cold.size());
    EXPECT_EQ(cold.cacheHits(), 0u);

    // Warm: every workload served from disk, including when the
    // construction itself runs on a pool.
    parallel::CellPool pool(4);
    const SuiteTraces warm(4000, 13, &pool, TraceCache(dir));
    EXPECT_EQ(warm.cacheHits(), warm.size());
    EXPECT_EQ(warm.cacheMisses(), 0u);

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_EQ(warm.trace(i).size(), cold.trace(i).size());
        for (std::size_t k = 0; k < cold.trace(i).size(); ++k) {
            ASSERT_EQ(warm.trace(i)[k].pc, cold.trace(i)[k].pc);
            ASSERT_EQ(warm.trace(i)[k].taken, cold.trace(i)[k].taken);
        }
    }

    // A different seed shares nothing with the warm entries.
    const SuiteTraces other(4000, 14, nullptr, TraceCache(dir));
    EXPECT_EQ(other.cacheMisses(), other.size());
    fs::remove_all(dir);
}

TEST(SharedTracePool, BudgetedLruPinsAndEvicts)
{
    SharedTracePool pool;
    TraceCache cache; // disabled: every first fetch generates

    const auto fetchKey = [&](const std::string &wl) {
        return pool.fetch(wl, 3000, 7, cache,
                          [] { return syntheticTrace(3000, 7); });
    };

    // Unlimited budget (default): nothing is pinned, so dropping
    // the only ref forces re-materialization.
    auto a = fetchKey("wl-a");
    EXPECT_EQ(pool.pinnedBytes(), 0u);
    a.reset();
    fetchKey("wl-a").reset();
    EXPECT_EQ(pool.stats().generated, 2u);
    EXPECT_EQ(pool.stats().evictions, 0u);

    // A budget wide enough for one trace pins the most recent fetch
    // and evicts the older one.
    pool.clear();
    const std::size_t one = fetchKey("wl-a")->memoryBytes();
    pool.clear();
    pool.setBudgetBytes(one + one / 2);
    fetchKey("wl-a").reset();
    EXPECT_EQ(pool.pinnedBytes(), one);
    fetchKey("wl-a").reset(); // pinned => memory hit, no regen
    EXPECT_EQ(pool.stats().memoryHits, 1u);
    EXPECT_EQ(pool.stats().generated, 1u);

    fetchKey("wl-b").reset(); // over budget: wl-a evicted
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_LE(pool.pinnedBytes(), one + one / 2);
    fetchKey("wl-a").reset(); // re-materializes, evicting wl-b
    EXPECT_EQ(pool.stats().generated, 3u);
    EXPECT_EQ(pool.stats().evictions, 2u);

    // Shrinking the budget evicts immediately.
    pool.setBudgetBytes(1);
    EXPECT_EQ(pool.pinnedBytes(), 0u);
    EXPECT_EQ(pool.stats().evictions, 3u);
}

} // namespace
} // namespace bpsim
