/**
 * @file
 * Tests for the on-disk trace cache: miss-then-hit, corruption
 * recovery, format-version invalidation, key separation, and the
 * SuiteTraces hit/miss accounting the benches surface as metrics.
 */

#include "trace/trace_cache.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/runner.hh"
#include "parallel/cell_pool.hh"
#include "trace/trace_buffer.hh"

namespace bpsim {
namespace {

namespace fs = std::filesystem;

/** A fresh, empty cache directory under the test temp dir. */
std::string
freshCacheDir(const char *name)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "/" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Deterministic synthetic trace: @p ops ops, every third a branch. */
TraceBuffer
syntheticTrace(Counter ops, std::uint64_t seed)
{
    TraceBuffer t;
    for (Counter i = 0; i < ops; ++i) {
        MicroOp op;
        if (i % 3 == 0) {
            op.cls = InstClass::CondBranch;
            op.pc = 0x1000 + ((i * 7 + seed) & 0xfff);
            op.taken = ((i + seed) & 3) != 0;
        } else {
            op.cls = InstClass::IntAlu;
            op.pc = 0x4000 + i;
        }
        t.push(op);
    }
    return t;
}

TEST(TraceCache, DisabledCacheMissesAndStoresNothing)
{
    TraceCache cache; // default: disabled
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.load("wl", 100, 1).has_value());
    EXPECT_FALSE(cache.store("wl", 100, 1, syntheticTrace(100, 1)));

    int generated = 0;
    bool hit = true;
    const TraceBuffer t = cache.fetch(
        "wl", 100, 1,
        [&] {
            ++generated;
            return syntheticTrace(100, 1);
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_EQ(t.size(), 100u);
}

TEST(TraceCache, MissGeneratesAndStoresThenHits)
{
    const std::string dir = freshCacheDir("trace_cache_hit");
    TraceCache cache(dir);
    EXPECT_TRUE(cache.enabled());

    int generated = 0;
    const auto generate = [&] {
        ++generated;
        return syntheticTrace(120, 7);
    };

    bool hit = true;
    const TraceBuffer cold = cache.fetch("176.gcc", 120, 7, generate,
                                         &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_TRUE(fs::exists(cache.entryPath("176.gcc", 120, 7)));

    const TraceBuffer warm = cache.fetch("176.gcc", 120, 7, generate,
                                         &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(generated, 1); // generator not invoked again

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(warm[i].pc, cold[i].pc);
        EXPECT_EQ(warm[i].taken, cold[i].taken);
        EXPECT_EQ(static_cast<int>(warm[i].cls),
                  static_cast<int>(cold[i].cls));
    }
    fs::remove_all(dir);
}

TEST(TraceCache, CorruptEntryIsRemovedAndRegenerated)
{
    const std::string dir = freshCacheDir("trace_cache_corrupt");
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("wl", 80, 3, syntheticTrace(80, 3)));
    const std::string path = cache.entryPath("wl", 80, 3);
    ASSERT_TRUE(fs::exists(path));

    // Stomp the entry with garbage: load must reject and delete it.
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file", f);
    std::fclose(f);
    EXPECT_FALSE(cache.load("wl", 80, 3).has_value());
    EXPECT_FALSE(fs::exists(path));

    // fetch regenerates and re-stores a valid entry.
    int generated = 0;
    bool hit = true;
    cache.fetch(
        "wl", 80, 3,
        [&] {
            ++generated;
            return syntheticTrace(80, 3);
        },
        &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(generated, 1);
    EXPECT_TRUE(cache.load("wl", 80, 3).has_value());
    fs::remove_all(dir);
}

TEST(TraceCache, WrongLengthEntryIsRejected)
{
    const std::string dir = freshCacheDir("trace_cache_len");
    TraceCache cache(dir);
    // A valid trace file whose length does not match the key: the
    // exact-length check must treat it as corrupt.
    ASSERT_TRUE(cache.store("wl", 200, 1, syntheticTrace(50, 1)));
    EXPECT_FALSE(cache.load("wl", 200, 1).has_value());
    EXPECT_FALSE(fs::exists(cache.entryPath("wl", 200, 1)));
    fs::remove_all(dir);
}

TEST(TraceCache, FormatVersionBumpInvalidates)
{
    const std::string dir = freshCacheDir("trace_cache_version");
    TraceCache v1(dir, 1);
    TraceCache v2(dir, 2);
    EXPECT_NE(v1.entryPath("wl", 60, 2), v2.entryPath("wl", 60, 2));

    ASSERT_TRUE(v1.store("wl", 60, 2, syntheticTrace(60, 2)));
    EXPECT_TRUE(v1.load("wl", 60, 2).has_value());
    EXPECT_FALSE(v2.load("wl", 60, 2).has_value());
    fs::remove_all(dir);
}

TEST(TraceCache, KeysSeparateWorkloadOpsAndSeed)
{
    TraceCache cache("/tmp/unused");
    const std::string base = cache.entryPath("wl", 100, 1);
    EXPECT_NE(cache.entryPath("other", 100, 1), base);
    EXPECT_NE(cache.entryPath("wl", 101, 1), base);
    EXPECT_NE(cache.entryPath("wl", 100, 2), base);
}

TEST(TraceCacheSuite, SuiteTracesCountsHitsAndMisses)
{
    const std::string dir = freshCacheDir("trace_cache_suite");

    // Cold: every workload generated and stored.
    const SuiteTraces cold(4000, 13, nullptr, TraceCache(dir));
    EXPECT_EQ(cold.cacheMisses(), cold.size());
    EXPECT_EQ(cold.cacheHits(), 0u);

    // Warm: every workload served from disk, including when the
    // construction itself runs on a pool.
    parallel::CellPool pool(4);
    const SuiteTraces warm(4000, 13, &pool, TraceCache(dir));
    EXPECT_EQ(warm.cacheHits(), warm.size());
    EXPECT_EQ(warm.cacheMisses(), 0u);

    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        ASSERT_EQ(warm.trace(i).size(), cold.trace(i).size());
        for (std::size_t k = 0; k < cold.trace(i).size(); ++k) {
            ASSERT_EQ(warm.trace(i)[k].pc, cold.trace(i)[k].pc);
            ASSERT_EQ(warm.trace(i)[k].taken, cold.trace(i)[k].taken);
        }
    }

    // A different seed shares nothing with the warm entries.
    const SuiteTraces other(4000, 14, nullptr, TraceCache(dir));
    EXPECT_EQ(other.cacheMisses(), other.size());
    fs::remove_all(dir);
}

} // namespace
} // namespace bpsim
