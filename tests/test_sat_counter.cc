/** @file Tests for saturating counters and signed weights. */

#include "common/sat_counter.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

/** Property sweep over counter widths. */
class SatCounterWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidthTest, SaturatesAtBounds)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, 0);
    const unsigned max = (1u << bits) - 1;
    for (unsigned i = 0; i < 2 * max + 4; ++i)
        c.increment();
    EXPECT_EQ(c.value(), max);
    for (unsigned i = 0; i < 2 * max + 4; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
}

TEST_P(SatCounterWidthTest, TakenThresholdIsMidpoint)
{
    const unsigned bits = GetParam();
    const unsigned max = (1u << bits) - 1;
    for (unsigned v = 0; v <= max; ++v) {
        SatCounter c(bits, static_cast<std::uint8_t>(v));
        EXPECT_EQ(c.taken(), v > max / 2) << "value " << v;
    }
}

TEST_P(SatCounterWidthTest, UpdateMovesTowardOutcome)
{
    const unsigned bits = GetParam();
    SatCounter c(bits, static_cast<std::uint8_t>((1u << bits) / 2));
    const auto before = c.value();
    c.update(true);
    EXPECT_GE(c.value(), before);
    c.update(false);
    c.update(false);
    EXPECT_LT(c.value(), before + 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidthTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(TwoBitCounter, MatchesConventionalSemantics)
{
    TwoBitCounter c; // weakly not-taken
    EXPECT_FALSE(c.taken());
    EXPECT_TRUE(c.weak());
    c.update(true); // -> 2 weakly taken
    EXPECT_TRUE(c.taken());
    EXPECT_TRUE(c.weak());
    c.update(true); // -> 3 strongly taken
    EXPECT_TRUE(c.taken());
    EXPECT_FALSE(c.weak());
    c.update(true); // saturate at 3
    EXPECT_EQ(c.value(), 3);
    c.update(false);
    c.update(false);
    c.update(false);
    c.update(false); // saturate at 0
    EXPECT_EQ(c.value(), 0);
    EXPECT_FALSE(c.taken());
}

TEST(TwoBitCounter, HysteresisNeedsTwoFlips)
{
    TwoBitCounter c(3); // strongly taken
    c.update(false);
    EXPECT_TRUE(c.taken()) << "one not-taken must not flip";
    c.update(false);
    EXPECT_FALSE(c.taken());
}

class SignedWeightWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SignedWeightWidthTest, SaturatesSymmetrically)
{
    const unsigned bits = GetParam();
    SignedWeight w(bits, 0);
    const int max = (1 << (bits - 1)) - 1;
    const int min = -(1 << (bits - 1));
    for (int i = 0; i < 3 * max; ++i)
        w.train(true);
    EXPECT_EQ(w.value(), max);
    for (int i = 0; i < 6 * max; ++i)
        w.train(false);
    EXPECT_EQ(w.value(), min);
}

TEST_P(SignedWeightWidthTest, TrainStepsByOne)
{
    SignedWeight w(GetParam(), 0);
    w.train(true);
    EXPECT_EQ(w.value(), 1);
    w.train(false);
    w.train(false);
    EXPECT_EQ(w.value(), -1);
}

INSTANTIATE_TEST_SUITE_P(Widths, SignedWeightWidthTest,
                         ::testing::Values(2u, 4u, 8u, 12u, 16u));

} // namespace
} // namespace bpsim
