/**
 * @file
 * Tests for hardened suite execution (src/robust): retry backoff,
 * deadlines, manifest round-tripping and checkpoint/resume with
 * byte-identical reports.
 */

#include "robust/run_manifest.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "robust/deadline.hh"
#include "robust/hardened_runner.hh"
#include "robust/retry.hh"
#include "robust/trace_fault.hh"

namespace bpsim {
namespace {

using namespace std::chrono_literals;
using robust::Deadline;
using robust::HardenedSuiteRunner;
using robust::RetryPolicy;
using robust::RunManifest;
using robust::SuiteCell;

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

/** Sleeper that records instead of blocking. */
struct FakeSleeper
{
    std::vector<std::chrono::milliseconds> slept;
    robust::Sleeper
    hook()
    {
        return [this](std::chrono::milliseconds ms) {
            slept.push_back(ms);
        };
    }
};

obs::RunReport::Row
makeRow(const std::string &workload, Counter mispredictions)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = "gshare";
    row.budgetBytes = 1024;
    row.branches = 1000;
    row.mispredictions = mispredictions;
    return row;
}

TEST(RetryPolicy, DelaysGrowAndStayBounded)
{
    RetryPolicy p;
    p.baseDelay = 10ms;
    p.maxDelay = 100ms;
    p.jitterFraction = 0.0;
    EXPECT_EQ(p.delayBefore(1).count(), 10);
    EXPECT_EQ(p.delayBefore(2).count(), 20);
    EXPECT_EQ(p.delayBefore(3).count(), 40);
    EXPECT_EQ(p.delayBefore(5).count(), 100);  // capped
    EXPECT_EQ(p.delayBefore(60).count(), 100); // shift-safe
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded)
{
    RetryPolicy p;
    p.baseDelay = 100ms;
    p.maxDelay = 100ms;
    p.jitterFraction = 0.25;
    for (unsigned a = 1; a < 10; ++a) {
        const auto d1 = p.delayBefore(a);
        const auto d2 = p.delayBefore(a);
        EXPECT_EQ(d1.count(), d2.count()) << "attempt " << a;
        EXPECT_GE(d1.count(), 75) << "attempt " << a;
        EXPECT_LE(d1.count(), 125) << "attempt " << a;
    }
    // Different attempts land on different jitter.
    EXPECT_NE(p.delayBefore(1).count(), p.delayBefore(2).count());
}

TEST(RetryCall, CountsAttemptsAndSleeps)
{
    RetryPolicy p;
    p.maxAttempts = 4;
    FakeSleeper sleeper;
    int calls = 0;
    const auto r = robust::retryCall(
        p,
        [&] {
            if (++calls < 3)
                throw std::runtime_error("transient");
        },
        sleeper.hook());
    EXPECT_TRUE(r.succeeded);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_EQ(sleeper.slept.size(), 2u);
    EXPECT_EQ(r.lastError, "transient");
}

TEST(RetryCall, ExhaustsAttempts)
{
    RetryPolicy p;
    p.maxAttempts = 2;
    FakeSleeper sleeper;
    const auto r = robust::retryCall(
        p, [] { throw std::runtime_error("permanent"); },
        sleeper.hook());
    EXPECT_FALSE(r.succeeded);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.lastError, "permanent");
    EXPECT_EQ(sleeper.slept.size(), 1u); // no sleep after last try
}

TEST(DeadlineTest, ExpiresAndThrows)
{
    const auto now = Deadline::Clock::now();
    const Deadline past = Deadline::at(now - 1ms);
    EXPECT_TRUE(past.expired());
    EXPECT_EQ(past.remaining().count(), 0);
    EXPECT_THROW(past.check("unit test"), robust::DeadlineExceeded);

    const Deadline future = Deadline::at(now + 1h);
    EXPECT_FALSE(future.expired());
    EXPECT_NO_THROW(future.check("unit test"));

    const Deadline forever = Deadline::unlimited();
    EXPECT_FALSE(forever.expired());
    EXPECT_TRUE(forever.unlimitedBudget());
}

TEST(RunManifestTest, RoundTripsThroughDisk)
{
    const std::string path = tempPath("manifest_roundtrip.json");
    RunManifest m("unit_test");
    m.markDone("a|gshare||1024", 1, makeRow("a", 100).toJson());
    m.markFailed("b|gshare||1024", 3, "deadline exceeded: cell");
    m.save(path);

    const RunManifest loaded = RunManifest::load(path);
    EXPECT_EQ(loaded.experiment(), "unit_test");
    ASSERT_EQ(loaded.cells().size(), 2u);
    EXPECT_TRUE(loaded.isDone("a|gshare||1024"));
    EXPECT_FALSE(loaded.isDone("b|gshare||1024"));
    EXPECT_EQ(loaded.done(), 1u);
    EXPECT_EQ(loaded.failed(), 1u);

    const auto *failed = loaded.find("b|gshare||1024");
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->attempts, 3u);
    EXPECT_EQ(failed->error, "deadline exceeded: cell");

    // Cached rows replay bit-exactly.
    const auto row = obs::RunReport::Row::fromJson(
        loaded.find("a|gshare||1024")->row);
    EXPECT_EQ(row.mispredictions, 100u);
    std::remove(path.c_str());
}

TEST(RunManifestTest, LoadErrorsAreTyped)
{
    EXPECT_THROW(RunManifest::load("/nonexistent/manifest.json"),
                 robust::RunManifestError);

    const std::string path = tempPath("manifest_bad.json");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema_version\": 1, \"cells\": ", f);
    std::fclose(f);
    EXPECT_THROW(RunManifest::load(path), robust::RunManifestError);
    std::remove(path.c_str());
}

TEST(RunManifestTest, SaveIsAtomic)
{
    const std::string path = tempPath("manifest_atomic.json");
    RunManifest m("unit_test");
    m.markDone("a|g||1", 1, makeRow("a", 1).toJson());
    m.save(path);
    // No temp file left behind, and the target parses.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    EXPECT_NO_THROW(RunManifest::load(path));
    std::remove(path.c_str());
}

std::vector<SuiteCell>
threeGoodCells()
{
    std::vector<SuiteCell> cells;
    for (const char *wl : {"a", "b", "c"}) {
        obs::RunReport::Row row =
            makeRow(wl, 100 + wl[0]);
        cells.push_back({row.key(), [row](const Deadline &) {
                             return row;
                         }});
    }
    return cells;
}

TEST(HardenedRunner, RunsAllCellsWithoutManifest)
{
    HardenedSuiteRunner runner("", RetryPolicy{});
    obs::RunReport report;
    const auto summary = runner.run(threeGoodCells(), report);
    EXPECT_EQ(summary.completed, 3u);
    EXPECT_EQ(summary.resumed, 0u);
    EXPECT_EQ(summary.failed, 0u);
    EXPECT_TRUE(summary.allOk());
    EXPECT_EQ(report.rows.size(), 3u);
    EXPECT_TRUE(report.annotations.empty());
}

TEST(HardenedRunner, RetriesTransientFailures)
{
    RetryPolicy p;
    p.maxAttempts = 3;
    HardenedSuiteRunner runner("", p);
    FakeSleeper sleeper;
    runner.setSleeper(sleeper.hook());

    int attempts = 0;
    std::vector<SuiteCell> cells;
    const obs::RunReport::Row row = makeRow("flaky", 7);
    cells.push_back({row.key(), [&attempts, row](const Deadline &) {
                         if (++attempts < 3)
                             throw std::runtime_error("transient io");
                         return row;
                     }});

    obs::RunReport report;
    const auto summary = runner.run(cells, report);
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_EQ(summary.retries, 2u);
    EXPECT_TRUE(summary.allOk());
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_EQ(report.rows[0].mispredictions, 7u);
}

TEST(HardenedRunner, AnnotatesPermanentFailures)
{
    RetryPolicy p;
    p.maxAttempts = 2;
    HardenedSuiteRunner runner("", p);
    FakeSleeper sleeper;
    runner.setSleeper(sleeper.hook());

    auto cells = threeGoodCells();
    const std::string bad_key = cells[1].key;
    cells[1].run = [](const Deadline &) -> obs::RunReport::Row {
        throw std::runtime_error("disk on fire");
    };

    obs::RunReport report;
    const auto summary = runner.run(cells, report);
    EXPECT_EQ(summary.completed, 2u);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_FALSE(summary.allOk());
    EXPECT_EQ(report.rows.size(), 2u); // partial but usable
    ASSERT_EQ(report.annotations.size(), 1u);
    EXPECT_EQ(report.annotations[0].key, bad_key);
    EXPECT_NE(report.annotations[0].message.find("disk on fire"),
              std::string::npos);

    // Partial reports survive serialization with their annotations.
    const auto j = report.toJson();
    const obs::RunReport back = obs::RunReport::fromJson(j);
    ASSERT_EQ(back.annotations.size(), 1u);
    EXPECT_EQ(back.annotations[0].key, bad_key);
}

TEST(HardenedRunner, CellTimeoutBecomesAFailureNotAHang)
{
    RetryPolicy p;
    p.maxAttempts = 2;
    HardenedSuiteRunner runner("", p, 1ms);
    FakeSleeper sleeper;
    runner.setSleeper(sleeper.hook());

    std::vector<SuiteCell> cells;
    cells.push_back(
        {"wedged|x||0", [](const Deadline &deadline) {
             // A cooperative loop that never finishes on its own.
             for (;;) {
                 deadline.check("wedged cell");
             }
             return obs::RunReport::Row{};
         }});
    obs::RunReport report;
    const auto summary = runner.run(cells, report);
    EXPECT_EQ(summary.failed, 1u);
    ASSERT_EQ(report.annotations.size(), 1u);
    EXPECT_NE(report.annotations[0].message.find("deadline"),
              std::string::npos);
}

TEST(HardenedRunner, KilledCampaignResumesByteIdentical)
{
    const std::string manifest = tempPath("resume_manifest.json");
    std::remove(manifest.c_str());

    // Uninterrupted reference run (no manifest).
    obs::RunReport reference;
    reference.experiment = "resume_test";
    HardenedSuiteRunner ref("", RetryPolicy{});
    ref.run(threeGoodCells(), reference);
    const std::string reference_bytes = reference.toJson().dump(2);

    // First attempt dies after two cells — as if the process were
    // killed at a cell boundary. The manifest survives.
    {
        obs::RunReport partial;
        partial.experiment = "resume_test";
        HardenedSuiteRunner runner(manifest, RetryPolicy{});
        runner.setAfterCellHook([](std::size_t finalized) {
            if (finalized == 2)
                throw std::runtime_error("killed");
        });
        EXPECT_THROW(runner.run(threeGoodCells(), partial),
                     std::runtime_error);
    }

    // Restart with the same manifest: the two done cells replay from
    // cache, only the third runs, and the report is byte-identical.
    obs::RunReport resumed;
    resumed.experiment = "resume_test";
    HardenedSuiteRunner runner(manifest, RetryPolicy{});
    std::size_t executed = 0;
    auto cells = threeGoodCells();
    for (auto &cell : cells) {
        const auto inner = cell.run;
        cell.run = [&executed, inner](const Deadline &d) {
            ++executed;
            return inner(d);
        };
    }
    const auto summary = runner.run(cells, resumed);
    EXPECT_EQ(summary.resumed, 2u);
    EXPECT_EQ(summary.completed, 1u);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(resumed.toJson().dump(2), reference_bytes);

    // A third run resumes everything and is still identical.
    obs::RunReport again;
    again.experiment = "resume_test";
    HardenedSuiteRunner runner2(manifest, RetryPolicy{});
    const auto s2 = runner2.run(threeGoodCells(), again);
    EXPECT_EQ(s2.resumed, 3u);
    EXPECT_EQ(s2.completed, 0u);
    EXPECT_EQ(again.toJson().dump(2), reference_bytes);
    std::remove(manifest.c_str());
}

TEST(HardenedRunner, InjectedIoFaultsAreRetriedToSuccess)
{
    RetryPolicy p;
    p.maxAttempts = 5;
    HardenedSuiteRunner runner("", p);
    FakeSleeper sleeper;
    runner.setSleeper(sleeper.hook());

    // Fail roughly half the attempts, capped so success is certain.
    robust::IoFaultInjector io(0.5, 99, 8);
    auto cells = threeGoodCells();
    for (auto &cell : cells) {
        const auto inner = cell.run;
        cell.run = [&io, inner](const Deadline &d) {
            if (io.shouldFail())
                throw std::runtime_error("injected io failure");
            return inner(d);
        };
    }
    obs::RunReport report;
    const auto summary = runner.run(cells, report);
    EXPECT_EQ(summary.completed, 3u);
    EXPECT_TRUE(summary.allOk());
    EXPECT_EQ(report.rows.size(), 3u);
}

} // namespace
} // namespace bpsim
