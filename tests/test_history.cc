/** @file Tests for the wide branch-history shift register. */

#include "common/history.hh"

#include <gtest/gtest.h>

#include <vector>

namespace bpsim {
namespace {

TEST(History, ShiftInOrder)
{
    HistoryRegister h(8);
    h.shiftIn(true);
    h.shiftIn(false);
    h.shiftIn(true);
    // Bit 0 is the newest.
    EXPECT_TRUE(h.bit(0));
    EXPECT_FALSE(h.bit(1));
    EXPECT_TRUE(h.bit(2));
    EXPECT_EQ(h.low64(), 0b101u);
}

TEST(History, OldBitsFallOffTheEnd)
{
    HistoryRegister h(4);
    for (int i = 0; i < 4; ++i)
        h.shiftIn(true);
    EXPECT_EQ(h.low64(), 0xfu);
    h.shiftIn(false);
    EXPECT_EQ(h.low64(), 0b1110u);
    for (int i = 0; i < 4; ++i)
        h.shiftIn(false);
    EXPECT_EQ(h.low64(), 0u);
}

TEST(History, LowNBits)
{
    HistoryRegister h(32);
    for (int i = 0; i < 12; ++i)
        h.shiftIn(i % 2 == 0);
    EXPECT_EQ(h.low(1), h.low64() & 1);
    EXPECT_EQ(h.low(5), h.low64() & 0x1f);
}

TEST(History, EqualityAndClear)
{
    HistoryRegister a(16), b(16);
    for (int i = 0; i < 10; ++i) {
        a.shiftIn(i % 3 == 0);
        b.shiftIn(i % 3 == 0);
    }
    EXPECT_TRUE(a == b);
    b.shiftIn(true);
    EXPECT_FALSE(a == b);
    b.clear();
    EXPECT_EQ(b.low64(), 0u);
}

TEST(History, FoldObservesHighBits)
{
    HistoryRegister h(100);
    // Set only a bit far beyond 64 positions back.
    h.shiftIn(true);
    for (int i = 0; i < 90; ++i)
        h.shiftIn(false);
    EXPECT_EQ(h.low64(), 0u) << "newest 64 bits are all zero";
    EXPECT_NE(h.fold(16), 0u) << "fold must still see the old bit";
}

/** Property: a history of length L behaves like an L-bit window of
 *  the outcome stream, across word boundaries. */
class HistoryLengthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HistoryLengthTest, MatchesReferenceWindow)
{
    const unsigned len = GetParam();
    HistoryRegister h(len);
    std::vector<bool> ref;
    std::uint64_t x = 0x243f6a8885a308d3ULL;
    for (int i = 0; i < 600; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const bool taken = (x >> 60) & 1;
        h.shiftIn(taken);
        ref.push_back(taken);
        // Check a few positions.
        for (unsigned p : {0u, 1u, len / 2, len - 1}) {
            if (p >= len || p >= ref.size())
                continue;
            EXPECT_EQ(h.bit(p), ref[ref.size() - 1 - p])
                << "pos " << p << " step " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, HistoryLengthTest,
                         ::testing::Values(1u, 2u, 9u, 21u, 63u, 64u,
                                           65u, 128u, 255u, 256u));

} // namespace
} // namespace bpsim
