/**
 * @file
 * Tests for the deterministic cell pool (src/parallel) and the
 * parallel suite helpers: every index computed exactly once, commits
 * in strict index order, serial-exact exception semantics, and —
 * the contract the whole subsystem exists for — RunReports that are
 * byte-identical to a serial run at any job count.
 */

#include "parallel/cell_pool.hh"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/runner.hh"
#include "predictors/static_pred.hh"
#include "robust/hardened_runner.hh"

namespace bpsim {
namespace {

using parallel::CellPool;

TEST(CellPool, ComputesEveryIndexOnceAndCommitsInOrder)
{
    constexpr std::size_t kCells = 32;
    CellPool pool(4);
    std::array<std::atomic<int>, kCells> computed{};
    std::vector<std::size_t> committed; // commit is single-threaded
    pool.run(
        kCells, [&](std::size_t i) { computed[i].fetch_add(1); },
        [&](std::size_t i) { committed.push_back(i); });
    for (std::size_t i = 0; i < kCells; ++i)
        EXPECT_EQ(computed[i].load(), 1) << "cell " << i;
    ASSERT_EQ(committed.size(), kCells);
    for (std::size_t i = 0; i < kCells; ++i)
        EXPECT_EQ(committed[i], i);
}

TEST(CellPool, SingleJobRunsInlineOnCallingThread)
{
    CellPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    pool.run(8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++calls;
    });
    EXPECT_EQ(calls, 8u);
    EXPECT_EQ(pool.stats().jobs, 1u);
}

TEST(CellPool, MoreJobsThanCells)
{
    CellPool pool(32);
    std::array<std::atomic<int>, 3> computed{};
    std::vector<std::size_t> committed;
    pool.run(
        3, [&](std::size_t i) { computed[i].fetch_add(1); },
        [&](std::size_t i) { committed.push_back(i); });
    for (auto &c : computed)
        EXPECT_EQ(c.load(), 1);
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(pool.stats().maxQueueDepth, 0u);
}

TEST(CellPool, ComputeFailureRethrowsLowestIndexAfterJoin)
{
    CellPool pool(4);
    std::vector<std::size_t> committed;
    try {
        pool.run(
            16,
            [&](std::size_t i) {
                if (i >= 3)
                    throw std::runtime_error("cell " +
                                             std::to_string(i));
            },
            [&](std::size_t i) { committed.push_back(i); });
        FAIL() << "expected run() to throw";
    } catch (const std::runtime_error &e) {
        // The lowest failing index wins, exactly where a serial
        // loop would have stopped.
        EXPECT_STREQ(e.what(), "cell 3");
    }
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(CellPool, CommitFailureCancelsOutstandingCells)
{
    CellPool pool(4);
    std::vector<std::size_t> committed;
    EXPECT_THROW(
        pool.run(
            64, [](std::size_t) {},
            [&](std::size_t i) {
                if (i == 2)
                    throw std::runtime_error("commit failed");
                committed.push_back(i);
            }),
        std::runtime_error);
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1}));
}

TEST(CellPool, StatsAccumulateAcrossRuns)
{
    CellPool pool(2);
    pool.run(5, [](std::size_t) {});
    pool.run(3, [](std::size_t) {});
    const auto &s = pool.stats();
    EXPECT_EQ(s.jobs, 2u);
    EXPECT_EQ(s.runs, 2u);
    EXPECT_EQ(s.cellsCompleted, 8u);
    EXPECT_EQ(s.cellMs.size(), 8u);
    EXPECT_GE(s.wallMs, 0.0);
}

TEST(JobsResolution, EnvAndFallbacks)
{
    unsetenv("BPSIM_JOBS");
    EXPECT_EQ(parallel::envJobs(), 0u);
    EXPECT_EQ(parallel::resolveJobs(5), 5u);
    EXPECT_EQ(parallel::resolveJobs(0), parallel::hardwareJobs());

    setenv("BPSIM_JOBS", "3", 1);
    EXPECT_EQ(parallel::envJobs(), 3u);
    EXPECT_EQ(parallel::resolveJobs(0), 3u);
    EXPECT_EQ(parallel::resolveJobs(7), 7u); // explicit request wins

    setenv("BPSIM_JOBS", "0", 1);
    EXPECT_EQ(parallel::envJobs(), 0u);
    setenv("BPSIM_JOBS", "banana", 1);
    EXPECT_EQ(parallel::envJobs(), 0u);
    unsetenv("BPSIM_JOBS");
    EXPECT_GE(parallel::hardwareJobs(), 1u);
}

// ---------------------------------------------------------------------
// Suite-level determinism: the acceptance contract is that a parallel
// run's RunReport JSON is byte-identical to the serial one.
// ---------------------------------------------------------------------

obs::RunReport
freshReport()
{
    obs::RunReport report;
    report.experiment = "parallel_determinism";
    return report;
}

TEST(ParallelSuite, TraceGenerationMatchesSerial)
{
    const SuiteTraces serial(8000, 11);
    CellPool pool(4);
    const SuiteTraces par(8000, 11, &pool);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(par.trace(i).size(), serial.trace(i).size());
        for (std::size_t k = 0; k < serial.trace(i).size(); ++k) {
            const MicroOp &a = serial.trace(i)[k];
            const MicroOp &b = par.trace(i)[k];
            ASSERT_EQ(a.pc, b.pc) << i << "/" << k;
            ASSERT_EQ(a.taken, b.taken) << i << "/" << k;
            ASSERT_EQ(static_cast<int>(a.cls),
                      static_cast<int>(b.cls))
                << i << "/" << k;
        }
    }
}

TEST(ParallelSuite, AccuracyReportByteIdenticalAtAnyJobCount)
{
    const SuiteTraces suite(10000, 5);
    const auto make = [] {
        return makePredictor(PredictorKind::Gshare, 4 * 1024);
    };

    obs::RunReport serial = freshReport();
    obs::MetricRegistry serialMetrics;
    double serialMean = -1;
    suiteAccuracyReport(suite, make, &serialMean, serial, "gshare",
                        4 * 1024, &serialMetrics, nullptr);
    const std::string serialBytes = serial.toJson().dump(2);
    const std::string serialMetricBytes =
        serialMetrics.toJson().dump(2);

    // jobs > cells (32 vs 12) is deliberately included.
    for (unsigned jobs : {2u, 4u, 32u}) {
        CellPool pool(jobs);
        obs::RunReport report = freshReport();
        obs::MetricRegistry metrics;
        double mean = -1;
        suiteAccuracyReport(suite, make, &mean, report, "gshare",
                            4 * 1024, &metrics, &pool);
        EXPECT_DOUBLE_EQ(mean, serialMean) << "jobs " << jobs;
        EXPECT_EQ(report.toJson().dump(2), serialBytes)
            << "jobs " << jobs;
        EXPECT_EQ(metrics.toJson().dump(2), serialMetricBytes)
            << "jobs " << jobs;
        EXPECT_EQ(pool.stats().cellsCompleted, suite.size());
    }
}

TEST(ParallelSuite, TimingReportByteIdenticalAtAnyJobCount)
{
    const SuiteTraces suite(6000, 6);
    CoreConfig cfg;
    const auto make = [] {
        return std::make_unique<SingleCycleFetchPredictor>(
            makePredictor(PredictorKind::GshareFast, 16 * 1024));
    };

    obs::RunReport serial = freshReport();
    obs::MetricRegistry serialMetrics;
    double serialHm = -1;
    suiteTimingReport(suite, cfg, make, &serialHm, serial,
                      "gshare.fast", "ideal", 16 * 1024,
                      &serialMetrics, nullptr, nullptr);
    const std::string serialBytes = serial.toJson().dump(2);
    const std::string serialMetricBytes =
        serialMetrics.toJson().dump(2);

    for (unsigned jobs : {2u, 4u}) {
        CellPool pool(jobs);
        obs::RunReport report = freshReport();
        obs::MetricRegistry metrics;
        double hm = -1;
        suiteTimingReport(suite, cfg, make, &hm, report,
                          "gshare.fast", "ideal", 16 * 1024, &metrics,
                          nullptr, &pool);
        EXPECT_DOUBLE_EQ(hm, serialHm) << "jobs " << jobs;
        EXPECT_EQ(report.toJson().dump(2), serialBytes)
            << "jobs " << jobs;
        EXPECT_EQ(metrics.toJson().dump(2), serialMetricBytes)
            << "jobs " << jobs;
    }
}

// ---------------------------------------------------------------------
// Hardened campaigns on the pool: single-writer manifest, cell-order
// rows, and resume that stays byte-identical.
// ---------------------------------------------------------------------

obs::RunReport::Row
hardenedRow(const std::string &workload, Counter mispredictions)
{
    obs::RunReport::Row row;
    row.workload = workload;
    row.predictor = "gshare";
    row.budgetBytes = 1024;
    row.branches = 1000;
    row.mispredictions = mispredictions;
    return row;
}

std::vector<robust::SuiteCell>
hardenedCells(std::size_t n)
{
    std::vector<robust::SuiteCell> cells;
    for (std::size_t i = 0; i < n; ++i) {
        const obs::RunReport::Row row =
            hardenedRow("wl" + std::to_string(i), 100 + i);
        cells.push_back(
            {row.key(),
             [row](const robust::Deadline &) { return row; }});
    }
    return cells;
}

TEST(ParallelHardened, ReportByteIdenticalToSerial)
{
    obs::RunReport serial = freshReport();
    robust::HardenedSuiteRunner serialRunner("", robust::RetryPolicy{});
    const auto serialSummary =
        serialRunner.run(hardenedCells(8), serial);
    EXPECT_EQ(serialSummary.completed, 8u);
    const std::string serialBytes = serial.toJson().dump(2);

    CellPool pool(4);
    obs::RunReport report = freshReport();
    robust::HardenedSuiteRunner runner("", robust::RetryPolicy{},
                                       std::chrono::milliseconds{0},
                                       &pool);
    const auto summary = runner.run(hardenedCells(8), report);
    EXPECT_EQ(summary.completed, 8u);
    EXPECT_TRUE(summary.allOk());
    EXPECT_EQ(report.toJson().dump(2), serialBytes);
}

TEST(CellPool, RetryExhaustionSurfacesSerialExactLowestIndex)
{
    // A worker whose cell exhausts its RetryPolicy inside compute()
    // throws like any other compute failure: the pool joins, cancels
    // outstanding work, and rethrows the LOWEST failing index — the
    // error a serial loop would have hit first — regardless of which
    // worker finished first at jobs=8.
    CellPool pool(8);
    robust::RetryPolicy retry;
    retry.maxAttempts = 2;
    std::atomic<unsigned> sleeps{0};
    const robust::Sleeper sleeper =
        [&](std::chrono::milliseconds) { ++sleeps; };

    std::vector<std::size_t> committed;
    try {
        pool.run(
            16,
            [&](std::size_t i) {
                const auto r = robust::retryCall(
                    retry,
                    [&] {
                        if (i >= 5)
                            throw std::runtime_error(
                                "cell " + std::to_string(i) +
                                " keeps failing");
                    },
                    sleeper);
                if (!r.succeeded)
                    throw std::runtime_error(r.lastError);
            },
            [&](std::size_t i) { committed.push_back(i); });
        FAIL() << "expected run() to throw";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 5 keeps failing");
    }
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
    // Every failing cell that ran slept between its two attempts;
    // none of them really blocked.
    EXPECT_GE(sleeps.load(), 1u);
}

TEST(ParallelHardened, DeadlineExhaustionAnnotatesSerialExact)
{
    // Deadline + RetryPolicy composed under a parallel run: two
    // cells blow their per-attempt deadline on every try. The
    // parallel campaign must finish the healthy cells, annotate the
    // exhausted ones with the serial-exact message, and produce a
    // report byte-identical to the serial campaign's.
    const auto buildCells = [] {
        std::vector<robust::SuiteCell> cells;
        for (std::size_t i = 0; i < 8; ++i) {
            const obs::RunReport::Row row =
                hardenedRow("wl" + std::to_string(i), 100 + i);
            const bool slow = i == 2 || i == 6;
            cells.push_back(
                {row.key(), [row, slow](const robust::Deadline &d) {
                     if (slow) {
                         // Burn past the 1ms budget, then poll the
                         // way runAccuracy's hook would.
                         std::this_thread::sleep_for(
                             std::chrono::milliseconds{5});
                         d.check(row.workload);
                     }
                     return row;
                 }});
        }
        return cells;
    };

    robust::RetryPolicy retry;
    retry.maxAttempts = 3;
    const auto runCampaign = [&](parallel::CellPool *pool,
                                 obs::RunReport &report,
                                 unsigned &sleeps) {
        robust::HardenedSuiteRunner runner(
            "", retry, std::chrono::milliseconds{1}, pool);
        unsigned *count = &sleeps;
        runner.setSleeper(
            [count](std::chrono::milliseconds) { ++*count; });
        return runner.run(buildCells(), report);
    };

    obs::RunReport serial = freshReport();
    unsigned serialSleeps = 0;
    const auto serialSummary =
        runCampaign(nullptr, serial, serialSleeps);
    EXPECT_EQ(serialSummary.completed, 6u);
    EXPECT_EQ(serialSummary.failed, 2u);
    EXPECT_EQ(serialSummary.retries, 4u); // 2 cells x 2 extra tries
    // Retries backed off through the fake sleeper, never for real.
    EXPECT_EQ(serialSleeps, 4u);

    ASSERT_EQ(serial.annotations.size(), 2u);
    EXPECT_EQ(serial.annotations[0].message,
              "failed after 3 attempt(s): deadline exceeded: wl2");
    EXPECT_EQ(serial.annotations[1].message,
              "failed after 3 attempt(s): deadline exceeded: wl6");

    CellPool pool(4);
    obs::RunReport parallelReport = freshReport();
    unsigned parallelSleeps = 0;
    const auto summary =
        runCampaign(&pool, parallelReport, parallelSleeps);
    EXPECT_EQ(summary.completed, serialSummary.completed);
    EXPECT_EQ(summary.failed, serialSummary.failed);
    EXPECT_EQ(summary.retries, serialSummary.retries);
    EXPECT_EQ(parallelSleeps, serialSleeps);
    EXPECT_EQ(parallelReport.toJson().dump(2),
              serial.toJson().dump(2));
}

TEST(ParallelHardened, ExhaustedCellsLandInManifestWithAttempts)
{
    const std::string manifest = std::string(::testing::TempDir()) +
                                 "/parallel_exhaust_manifest.json";
    std::remove(manifest.c_str());

    std::vector<robust::SuiteCell> cells = hardenedCells(4);
    cells[1].run = [](const robust::Deadline &) -> obs::RunReport::Row {
        throw std::runtime_error("synthetic failure");
    };

    robust::RetryPolicy retry;
    retry.maxAttempts = 2;
    CellPool pool(4);
    obs::RunReport report = freshReport();
    robust::HardenedSuiteRunner runner(manifest, retry,
                                       std::chrono::milliseconds{0},
                                       &pool);
    runner.setSleeper([](std::chrono::milliseconds) {});
    const auto summary = runner.run(cells, report);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.completed, 3u);

    // The checkpoint file carries the failure verbatim, so a resumed
    // campaign (and bpstat manifest) see attempts and error intact.
    const robust::RunManifest m = robust::RunManifest::load(manifest);
    const robust::CellRecord *failed = m.find(cells[1].key);
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->status, robust::CellRecord::Status::Failed);
    EXPECT_EQ(failed->attempts, 2u);
    EXPECT_EQ(failed->error, "synthetic failure");
    std::remove(manifest.c_str());
}

TEST(ParallelHardened, KilledCampaignResumesByteIdentical)
{
    const std::string manifest = std::string(::testing::TempDir()) +
                                 "/parallel_resume_manifest.json";
    std::remove(manifest.c_str());

    obs::RunReport reference = freshReport();
    robust::HardenedSuiteRunner ref("", robust::RetryPolicy{});
    ref.run(hardenedCells(6), reference);
    const std::string referenceBytes = reference.toJson().dump(2);

    // Parallel campaign killed at a cell boundary.
    {
        CellPool pool(3);
        obs::RunReport partial = freshReport();
        robust::HardenedSuiteRunner runner(
            manifest, robust::RetryPolicy{},
            std::chrono::milliseconds{0}, &pool);
        runner.setAfterCellHook([](std::size_t finalized) {
            if (finalized == 3)
                throw std::runtime_error("killed");
        });
        EXPECT_THROW(runner.run(hardenedCells(6), partial),
                     std::runtime_error);
    }

    // Parallel restart resumes the done cells and completes the rest;
    // the final report matches the uninterrupted serial run exactly.
    CellPool pool(3);
    obs::RunReport resumed = freshReport();
    robust::HardenedSuiteRunner runner(manifest, robust::RetryPolicy{},
                                       std::chrono::milliseconds{0},
                                       &pool);
    const auto summary = runner.run(hardenedCells(6), resumed);
    EXPECT_EQ(summary.resumed, 3u);
    EXPECT_EQ(summary.completed, 3u);
    EXPECT_EQ(resumed.toJson().dump(2), referenceBytes);
    std::remove(manifest.c_str());
}

} // namespace
} // namespace bpsim
