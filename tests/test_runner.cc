/** @file Tests for the experiment runners. */

#include "core/runner.hh"

#include <gtest/gtest.h>

#include <cstdlib>

#include "predictors/static_pred.hh"
#include "workloads/registry.hh"

namespace bpsim {
namespace {

TEST(AccuracyRunner, CountsOnlyConditionalBranches)
{
    TraceBuffer t;
    MicroOp alu;
    alu.cls = InstClass::IntAlu;
    MicroOp br;
    br.cls = InstClass::CondBranch;
    br.pc = 0x40;
    br.taken = true;
    MicroOp jmp;
    jmp.cls = InstClass::UncondBranch;
    jmp.taken = true;
    for (int i = 0; i < 10; ++i) {
        t.push(alu);
        t.push(br);
        t.push(jmp);
    }
    StaticPredictor never(false);
    const auto r = runAccuracy(never, t);
    EXPECT_EQ(r.branches, 10u);
    EXPECT_EQ(r.mispredictions, 10u);
    EXPECT_DOUBLE_EQ(r.percent(), 100.0);
}

TEST(SuiteTraces, BuildsAllTwelveOnce)
{
    SuiteTraces suite(20000, 1);
    ASSERT_EQ(suite.size(), 12u);
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite.name(i), specint2000Names()[i]);
        EXPECT_EQ(suite.trace(i).size(), 20000u);
        EXPECT_GT(suite.trace(i).condBranches(), 0u);
    }
}

TEST(SuiteAccuracy, MeanIsArithmeticOverWorkloads)
{
    SuiteTraces suite(15000, 2);
    double mean = -1;
    const auto res = suiteAccuracy(
        suite, [] { return std::make_unique<StaticPredictor>(true); },
        &mean);
    ASSERT_EQ(res.size(), 12u);
    double acc = 0;
    for (const auto &r : res)
        acc += r.percent();
    EXPECT_NEAR(mean, acc / 12.0, 1e-12);
}

TEST(SuiteTiming, HarmonicMeanAndPerWorkloadResults)
{
    SuiteTraces suite(15000, 3);
    CoreConfig cfg;
    double hm = -1;
    const auto res = suiteTiming(
        suite, cfg,
        [] {
            return std::make_unique<SingleCycleFetchPredictor>(
                std::make_unique<StaticPredictor>(true));
        },
        &hm);
    ASSERT_EQ(res.size(), 12u);
    std::vector<double> ipcs;
    for (const auto &r : res) {
        EXPECT_GT(r.ipc(), 0.0);
        ipcs.push_back(r.ipc());
    }
    EXPECT_NEAR(hm, harmonicMean(ipcs), 1e-12);
    EXPECT_LE(hm, arithmeticMean(ipcs));
}

TEST(BenchOps, EnvironmentOverride)
{
    unsetenv("BPSIM_OPS_PER_WORKLOAD");
    EXPECT_EQ(benchOpsPerWorkload(1234), 1234u);
    setenv("BPSIM_OPS_PER_WORKLOAD", "777", 1);
    EXPECT_EQ(benchOpsPerWorkload(1234), 777u);
    setenv("BPSIM_OPS_PER_WORKLOAD", "not-a-number", 1);
    EXPECT_EQ(benchOpsPerWorkload(1234), 1234u);
    unsetenv("BPSIM_OPS_PER_WORKLOAD");
}

} // namespace
} // namespace bpsim
