/**
 * @file
 * Tests for the machine-readable run-report layer: JSON round-trips,
 * schema-version rejection, validate() invariants, and the event
 * tracer's ring-buffer wraparound and export formats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/event_trace.hh"
#include "obs/json.hh"
#include "obs/run_report.hh"

using namespace bpsim::obs;

namespace {

RunReport::Row
timingRow(const std::string &workload)
{
    RunReport::Row r;
    r.workload = workload;
    r.predictor = "perceptron";
    r.mode = "overriding";
    r.budgetBytes = 64 * 1024;
    r.branches = 1000;
    r.mispredictions = 50;
    r.hasTiming = true;
    r.issueWidth = 4;
    r.cycles = 5000;
    r.instructions = 9000;
    r.flushCyclesOverride = 120;
    r.flushCyclesMispredict = 380;
    r.squashedUops = 4 * (120 + 380);
    r.flushes = 60;
    r.stallCyclesIcache = 40;
    r.stallCyclesBtb = 10;
    r.robStallCycles = 25;
    return r;
}

RunReport
sampleReport()
{
    RunReport rep;
    rep.experiment = "unit-test";
    rep.opsPerWorkload = 12345;
    rep.seed = 42;
    rep.rows.push_back(timingRow("176.gcc"));

    RunReport::Row acc;
    acc.workload = "164.gzip";
    acc.predictor = "gshare";
    acc.budgetBytes = 16 * 1024;
    acc.branches = 500;
    acc.mispredictions = 30;
    rep.rows.push_back(acc);
    return rep;
}

} // namespace

TEST(RunReport, JsonRoundTripPreservesEverything)
{
    RunReport rep = sampleReport();
    Json metrics = Json::object();
    metrics.set("sim.core.cycles", Json(std::uint64_t{5000}));
    rep.metrics = metrics;

    const std::string text = rep.toJson().dump(2);
    const RunReport back = RunReport::fromJson(Json::parse(text));

    EXPECT_EQ(back.schemaVersion, RunReport::kSchemaVersion);
    EXPECT_EQ(back.experiment, "unit-test");
    EXPECT_EQ(back.opsPerWorkload, 12345u);
    EXPECT_EQ(back.seed, 42u);
    ASSERT_EQ(back.rows.size(), 2u);

    const auto &t = back.rows[0];
    EXPECT_EQ(t.key(), rep.rows[0].key());
    EXPECT_TRUE(t.hasTiming);
    EXPECT_EQ(t.issueWidth, 4u);
    EXPECT_EQ(t.cycles, 5000u);
    EXPECT_EQ(t.instructions, 9000u);
    EXPECT_EQ(t.squashedUops, 2000u);
    EXPECT_EQ(t.flushes, 60u);
    EXPECT_EQ(t.flushCyclesOverride, 120u);
    EXPECT_EQ(t.flushCyclesMispredict, 380u);
    EXPECT_EQ(t.stallCyclesIcache, 40u);
    EXPECT_EQ(t.stallCyclesBtb, 10u);
    EXPECT_EQ(t.robStallCycles, 25u);
    EXPECT_DOUBLE_EQ(t.ipc(), 9000.0 / 5000.0);

    const auto &a = back.rows[1];
    EXPECT_FALSE(a.hasTiming);
    EXPECT_EQ(a.mode, "");
    EXPECT_EQ(a.branches, 500u);
    EXPECT_DOUBLE_EQ(a.mispredictPercent(), 6.0);

    EXPECT_DOUBLE_EQ(back.metrics.get("sim.core.cycles").asNumber(),
                     5000.0);
}

TEST(RunReport, RejectsUnknownSchemaVersion)
{
    Json j = sampleReport().toJson();
    j.set("schema_version", Json(RunReport::kSchemaVersion + 1));
    EXPECT_THROW(RunReport::fromJson(j), RunReportError);
}

TEST(RunReport, RejectsNonObject)
{
    EXPECT_THROW(RunReport::fromJson(Json::parse("[1,2]")),
                 RunReportError);
    EXPECT_THROW(Json::parse("{not json"), JsonError);
}

TEST(RunReport, ValidateAcceptsConsistentReport)
{
    EXPECT_TRUE(sampleReport().validate().empty());
}

TEST(RunReport, ValidateFlagsBrokenInvariants)
{
    // Duplicate row keys.
    RunReport dup = sampleReport();
    dup.rows.push_back(dup.rows[0]);
    EXPECT_FALSE(dup.validate().empty());

    // Squashed uops out of step with flush-cycle attribution.
    RunReport bad = sampleReport();
    bad.rows[0].squashedUops += 1;
    EXPECT_FALSE(bad.validate().empty());

    // More mispredictions than branches.
    RunReport impossible = sampleReport();
    impossible.rows[1].mispredictions =
        impossible.rows[1].branches + 1;
    EXPECT_FALSE(impossible.validate().empty());
}

TEST(RunReport, FileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "/bpsim_run_report_test.json";
    const RunReport rep = sampleReport();
    ASSERT_TRUE(rep.writeFile(path));
    const RunReport back = RunReport::readFile(path);
    EXPECT_EQ(back.rows.size(), rep.rows.size());
    EXPECT_EQ(back.rows[0].key(), rep.rows[0].key());
    std::remove(path.c_str());
}

TEST(EventTracer, RingBufferWraparoundKeepsMostRecent)
{
    EventTracer t(4);
    for (std::uint64_t c = 0; c < 10; ++c)
        t.record(c, SimEvent::Predict, 0x1000 + c, c % 2);

    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    EXPECT_EQ(t.recorded(), 10u);
    // Oldest retained is cycle 6; newest is cycle 9.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.at(i).cycle, 6 + i);
        EXPECT_EQ(t.at(i).pc, 0x1000 + 6 + i);
    }

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(EventTracer, JsonlExportOneObjectPerLine)
{
    EventTracer t(8);
    t.record(1, SimEvent::OverrideDisagree, 0x40, 5);
    t.record(2, SimEvent::MispredictResolve, 0x44, 12);

    std::ostringstream os;
    t.exportJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::vector<Json> lines;
    while (std::getline(is, line))
        lines.push_back(Json::parse(line));

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].get("event").asString(), "override_disagree");
    EXPECT_EQ(lines[0].get("cycle").asU64(), 1u);
    EXPECT_EQ(lines[0].get("arg").asU64(), 5u);
    EXPECT_EQ(lines[1].get("event").asString(), "mispredict_resolve");
}

TEST(EventTracer, ChromeTraceIsLoadableJson)
{
    EventTracer t(8);
    t.record(3, SimEvent::Flush, 0x80, 4);
    t.record(7, SimEvent::RobStall, 0, 0);

    std::ostringstream os;
    t.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    const Json &events = doc.get("traceEvents");
    ASSERT_TRUE(events.isArray());
    // Metadata thread-name rows + the two recorded events.
    ASSERT_GE(events.size(), 2u);
    bool saw_flush = false;
    for (const Json &e : events.items()) {
        if (e.get("ph").asString() == "M") {
            EXPECT_EQ(e.get("name").asString(), "thread_name");
            continue;
        }
        EXPECT_EQ(e.get("ph").asString(), "X");
        if (e.get("name").asString() == "flush") {
            saw_flush = true;
            EXPECT_DOUBLE_EQ(e.get("ts").asNumber(), 3.0);
            EXPECT_DOUBLE_EQ(e.get("dur").asNumber(), 4.0);
        }
    }
    EXPECT_TRUE(saw_flush);
}
