/** @file Suite-level tests for the twelve SPECint stand-in kernels. */

#include "workloads/registry.hh"

#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hh"

namespace bpsim {
namespace {

TEST(Registry, AllTwelveBenchmarksExist)
{
    EXPECT_EQ(specint2000Names().size(), 12u);
    for (const auto &name : specint2000Names()) {
        const auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_EQ(w->name(), name);
        EXPECT_FALSE(w->description().empty());
    }
    EXPECT_EQ(makeWorkload("999.nonesuch"), nullptr);
}

TEST(Registry, MakeSuiteMatchesNameOrder)
{
    const auto suite = makeSpecint2000();
    ASSERT_EQ(suite.size(), 12u);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i]->name(), specint2000Names()[i]);
}

/** Per-kernel property sweep. */
class KernelTest : public ::testing::TestWithParam<std::string>
{
  protected:
    TraceBuffer
    gen(Counter ops = 60000, std::uint64_t seed = 42)
    {
        const auto w = makeWorkload(GetParam());
        return generateTrace(*w, ops, seed);
    }
};

TEST_P(KernelTest, ProducesExactlyRequestedOps)
{
    const auto t = gen(60000);
    EXPECT_EQ(t.size(), 60000u);
}

TEST_P(KernelTest, DeterministicForSameSeed)
{
    const auto a = gen(30000, 7);
    const auto b = gen(30000, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "op " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "op " << i;
        ASSERT_EQ(a[i].extra, b[i].extra) << "op " << i;
    }
}

TEST_P(KernelTest, DifferentSeedsDiffer)
{
    const auto a = gen(30000, 1);
    const auto b = gen(30000, 2);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += (a[i].pc == b[i].pc && a[i].taken == b[i].taken) ? 1 : 0;
    EXPECT_LT(same, a.size()) << "seed must influence the trace";
}

TEST_P(KernelTest, BranchDensityIsRealistic)
{
    const auto t = gen();
    // SPECint conditional-branch density is roughly one in four to
    // one in eight instructions.
    EXPECT_GT(t.branchDensity(), 0.08) << GetParam();
    EXPECT_LT(t.branchDensity(), 0.45) << GetParam();
}

TEST_P(KernelTest, OutcomesAreMixedButBiasedSanely)
{
    const auto t = gen();
    Counter taken = 0;
    for (const auto &op : t)
        if (op.cls == InstClass::CondBranch)
            taken += op.taken ? 1 : 0;
    const double frac =
        static_cast<double>(taken) / static_cast<double>(t.condBranches());
    EXPECT_GT(frac, 0.15) << GetParam();
    EXPECT_LT(frac, 0.97) << GetParam();
}

TEST_P(KernelTest, UsesMemoryAndCompute)
{
    const auto t = gen();
    Counter loads = 0, stores = 0, alu = 0;
    for (const auto &op : t) {
        loads += op.cls == InstClass::Load ? 1 : 0;
        stores += op.cls == InstClass::Store ? 1 : 0;
        alu += op.cls == InstClass::IntAlu ? 1 : 0;
    }
    EXPECT_GT(loads, t.size() / 100) << GetParam();
    EXPECT_GT(stores, 0u) << GetParam();
    EXPECT_GT(alu, t.size() / 10) << GetParam();
}

TEST_P(KernelTest, HasSubstantialStaticBranchFootprint)
{
    const auto t = gen();
    std::set<Addr> sites;
    for (const auto &op : t)
        if (op.cls == InstClass::CondBranch)
            sites.insert(op.pc);
    EXPECT_GE(sites.size(), 8u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KernelTest,
    ::testing::ValuesIn(specint2000Names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '.')
                c = '_';
        return n;
    });

} // namespace
} // namespace bpsim
