/** @file Tests for the set-associative cache model. */

#include "sim/cache.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c(1024, 64, 1, "t");
    EXPECT_FALSE(c.access(0x0));
    EXPECT_TRUE(c.access(0x0));
    EXPECT_TRUE(c.access(0x3f)) << "same 64B line";
    EXPECT_FALSE(c.access(0x40)) << "next line";
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, DirectMappedConflicts)
{
    // 1 KB direct mapped, 64 B lines => 16 sets; addresses 0 and
    // 1024 conflict.
    Cache c(1024, 64, 1, "dm");
    c.access(0);
    EXPECT_FALSE(c.access(1024));
    EXPECT_FALSE(c.access(0)) << "evicted by the conflicting line";
}

TEST(Cache, TwoWayAvoidsPairConflict)
{
    Cache c(1024, 64, 2, "2w");
    c.access(0);
    c.access(1024);
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(1024));
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(1024, 64, 2, "lru");
    // Set 0 has 2 ways; lines 0, 1024, 2048 map to it.
    c.access(0);
    c.access(1024);
    c.access(0);      // 0 is now MRU
    c.access(2048);   // evicts 1024
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(1024));
}

TEST(Cache, ContainsDoesNotPerturb)
{
    Cache c(1024, 64, 2, "probe");
    c.access(0);
    const Counter a = c.accesses();
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(0x40000));
    EXPECT_EQ(c.accesses(), a);
}

TEST(Cache, GeometryAccessors)
{
    Cache c(64 * 1024, 64, 1, "l1i");
    EXPECT_EQ(c.sizeBytes(), 64u * 1024);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.associativity(), 1u);
    EXPECT_EQ(c.name(), "l1i");
}

/** Property: a working set that fits is fully resident after one
 *  pass, for any geometry. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheGeometryTest, ResidentWorkingSetAlwaysHits)
{
    const auto [size_kb, line, assoc] = GetParam();
    Cache c(static_cast<std::size_t>(size_kb) * 1024,
            static_cast<std::size_t>(line),
            static_cast<unsigned>(assoc), "p");
    const std::size_t lines =
        static_cast<std::size_t>(size_kb) * 1024 / line;
    // Touch every line once (cold), then verify all hit.
    for (std::size_t i = 0; i < lines; ++i)
        c.access(i * line);
    for (std::size_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * line)) << "line " << i;
    EXPECT_EQ(c.misses(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::tuple{1, 64, 1}, std::tuple{4, 32, 2},
                      std::tuple{64, 64, 1}, std::tuple{64, 128, 4},
                      std::tuple{2048, 128, 4}));

} // namespace
} // namespace bpsim
