/** @file Tests for the FO4 clock/technology model. */

#include "delay/clock_model.hh"

#include <gtest/gtest.h>

namespace bpsim {
namespace {

TEST(ClockModel, PaperDesignPointIs3Point5GHz)
{
    // Section 4.1.2: 8 FO4 at 100 nm ~= 3.5 GHz.
    ClockModel clk(100.0, 8.0);
    EXPECT_NEAR(clk.frequencyGHz(), 3.5, 0.05);
    EXPECT_NEAR(clk.fo4Ps(), 36.0, 0.5);
    EXPECT_NEAR(clk.periodPs(), 288.0, 2.0);
}

TEST(ClockModel, Fo4ScalesWithTechnology)
{
    ClockModel a(100.0), b(50.0);
    EXPECT_NEAR(a.fo4Ps() / b.fo4Ps(), 2.0, 1e-9);
}

TEST(ClockModel, CyclesCeilAndMinimumOne)
{
    ClockModel clk(100.0, 8.0);
    EXPECT_EQ(clk.cyclesForFo4(0.0), 1u);
    EXPECT_EQ(clk.cyclesForFo4(7.9), 1u);
    EXPECT_EQ(clk.cyclesForFo4(8.0), 1u);
    EXPECT_EQ(clk.cyclesForFo4(8.1), 2u);
    EXPECT_EQ(clk.cyclesForFo4(16.0), 2u);
    EXPECT_EQ(clk.cyclesForFo4(88.0), 11u);
}

TEST(ClockModel, SlowerClockNeedsFewerCycles)
{
    ClockModel fast(100.0, 8.0), slow(100.0, 16.0);
    for (double fo4 : {10.0, 33.3, 70.0})
        EXPECT_LE(slow.cyclesForFo4(fo4), fast.cyclesForFo4(fo4));
}

} // namespace
} // namespace bpsim
