/** @file Tests for the branch-profile analysis module. */

#include "analysis/branch_profile.hh"

#include <gtest/gtest.h>

#include "analysis/vulnerability.hh"
#include "core/factory.hh"
#include "robust/fault_injector.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace bpsim {
namespace {

TEST(SiteStats, RatesBiasEntropy)
{
    SiteStats s{0x40, 100, 75};
    EXPECT_DOUBLE_EQ(s.takenRate(), 0.75);
    EXPECT_DOUBLE_EQ(s.bias(), 0.5);
    EXPECT_NEAR(s.entropyBits(), 0.8113, 1e-3);

    SiteStats fully{0x40, 10, 10};
    EXPECT_DOUBLE_EQ(fully.bias(), 1.0);
    EXPECT_DOUBLE_EQ(fully.entropyBits(), 0.0);

    SiteStats even{0x40, 10, 5};
    EXPECT_DOUBLE_EQ(even.bias(), 0.0);
    EXPECT_DOUBLE_EQ(even.entropyBits(), 1.0);
}

TEST(BranchProfile, AggregatesSites)
{
    BranchProfile p;
    for (int i = 0; i < 100; ++i) {
        p.observe(0x100, true);       // always taken
        p.observe(0x200, i % 2 == 0); // 50/50
    }
    EXPECT_EQ(p.dynamicBranches(), 200u);
    EXPECT_EQ(p.staticSites(), 2u);
    EXPECT_DOUBLE_EQ(p.takenFraction(), 0.75);
    EXPECT_DOUBLE_EQ(p.site(0x100).takenRate(), 1.0);
    EXPECT_DOUBLE_EQ(p.site(0x200).takenRate(), 0.5);
    EXPECT_EQ(p.site(0x999).executions, 0u);
    // Half the dynamic branches come from the fully biased site.
    EXPECT_DOUBLE_EQ(p.biasedFraction(0.9), 0.5);
    EXPECT_NEAR(p.meanSiteEntropyBits(), 0.5, 1e-9);
}

TEST(BranchProfile, HottestSitesOrdered)
{
    BranchProfile p;
    for (int i = 0; i < 10; ++i)
        p.observe(0x100, true);
    for (int i = 0; i < 30; ++i)
        p.observe(0x200, true);
    for (int i = 0; i < 20; ++i)
        p.observe(0x300, false);
    const auto hot = p.hottestSites(2);
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].pc, 0x200u);
    EXPECT_EQ(hot[1].pc, 0x300u);
}

TEST(BranchProfile, FromWorkloadTrace)
{
    const auto w = makeWorkload("252.eon");
    const auto trace = generateTrace(*w, 50000, 3);
    const BranchProfile p = profileTrace(trace);
    EXPECT_EQ(p.dynamicBranches(), trace.condBranches());
    EXPECT_GT(p.staticSites(), 4u);
    // eon's branch population is dominated by biased loop/miss
    // tests.
    EXPECT_GT(p.biasedFraction(0.8), 0.3);
}

TEST(MispredictProfile, AttributesMisses)
{
    MispredictProfile m;
    for (int i = 0; i < 100; ++i) {
        m.observe(0x100, false);       // never misses
        m.observe(0x200, i % 4 == 0);  // 25% local rate
        m.observe(0x300, i % 2 == 0);  // 50% local rate
    }
    EXPECT_EQ(m.branches(), 300u);
    EXPECT_EQ(m.mispredictions(), 75u);
    EXPECT_DOUBLE_EQ(m.percent(), 25.0);

    const auto top = m.topOffenders(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].pc, 0x300u);
    EXPECT_EQ(top[0].misses, 50u);
    EXPECT_NEAR(top[0].shareOfAllMisses, 50.0 / 75.0, 1e-12);
    EXPECT_DOUBLE_EQ(top[0].localRate(), 0.5);
    EXPECT_EQ(top[1].pc, 0x200u);
}

TEST(Vulnerability, EnumeratesGshareFields)
{
    auto pred = makePredictor(PredictorKind::Gshare, 16 * 1024);
    const auto fields = analysis::enumerateStateFields(*pred);
    ASSERT_EQ(fields.size(), 2u);

    std::size_t total = 0;
    bool saw_pht = false;
    for (const auto &f : fields) {
        total += f.totalBits();
        if (f.name == "pred.gshare.pht") {
            saw_pht = true;
            EXPECT_EQ(f.bits, 2u);
            EXPECT_GT(f.count, 0u);
        }
    }
    EXPECT_TRUE(saw_pht);
    EXPECT_EQ(total, pred->storageBits());
}

TEST(Vulnerability, RanksGshareFieldsDeterministically)
{
    auto w = makeWorkload("176.gcc");
    const TraceBuffer trace = generateTrace(*w, 60000, 3);

    robust::FaultPlan plan;
    plan.upsetRatePerBit = 1e-3;
    plan.intervalBranches = 256;
    plan.seed = 0xfeedbee5;

    const auto make = [] {
        return makePredictor(PredictorKind::Gshare, 16 * 1024);
    };
    const auto a = analysis::rankFieldVulnerability(make, trace, plan);
    const auto b = analysis::rankFieldVulnerability(make, trace, plan);

    ASSERT_EQ(a.size(), 2u);
    ASSERT_EQ(b.size(), 2u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].field, b[i].field);
        EXPECT_EQ(a[i].flips, b[i].flips);
        EXPECT_EQ(a[i].baselineMisses, b[i].baselineMisses);
        EXPECT_EQ(a[i].bombardedMisses, b[i].bombardedMisses);
    }

    // Sorted most-vulnerable first; ties break by name.
    for (std::size_t i = 1; i < a.size(); ++i) {
        EXPECT_GE(a[i - 1].deltaMpkiPerFlip(), a[i].deltaMpkiPerFlip());
    }

    // The PHT is by far the largest field at this rate, so the
    // campaign must have landed flips in it.
    for (const auto &v : a) {
        EXPECT_EQ(v.ops, trace.size());
        if (v.field == "pred.gshare.pht") {
            EXPECT_GT(v.flips, 0u);
        }
    }
}

} // namespace
} // namespace bpsim
