/**
 * @file
 * Unit tests for the flight recorder (obs/span_trace): the disabled
 * null-sink path, per-thread recording, ring overflow accounting,
 * thread naming, Chrome trace-event export shape, and the
 * thread-local cache across recorder instances.
 */

#include "obs/span_trace.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"

namespace bpsim::obs {
namespace {

/** Uninstall on scope exit, so a failing test can't leak an
 *  installed recorder into the next one. */
struct InstallGuard
{
    explicit InstallGuard(SpanRecorder *rec)
    {
        SpanRecorder::install(rec);
    }
    ~InstallGuard() { SpanRecorder::install(nullptr); }
};

TEST(SpanTrace, DisabledPathRecordsNothing)
{
    ASSERT_EQ(SpanRecorder::current(), nullptr);
    {
        SpanScope span("cat", "noop");
        spanInstant("cat", "noop");
        SpanRecorder::nameThisThread("nobody");
    }
    // Still nothing installed, and installing later starts empty.
    SpanRecorder rec;
    InstallGuard guard(&rec);
    EXPECT_EQ(rec.threadCount(), 0u);
}

TEST(SpanTrace, RecordsSpansInstantsAndThreadNames)
{
    SpanRecorder rec;
    InstallGuard guard(&rec);

    SpanRecorder::nameThisThread("main");
    {
        SpanScope span("cell", "fig7", "cell", 41);
    }
    spanInstant("steal", "fig7");

    std::thread worker([] {
        SpanRecorder::nameThisThread("worker 0");
        SpanScope span("sched", "idle");
    });
    worker.join();

    EXPECT_EQ(rec.threadCount(), 2u);
    EXPECT_EQ(rec.dropped(), 0u);

    std::ostringstream os;
    rec.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    const Json &events = doc.get("traceEvents");
    ASSERT_TRUE(events.isArray());

    std::vector<std::string> threadNames;
    bool sawCell = false, sawSteal = false, sawIdle = false;
    for (const auto &ev : events.items()) {
        const std::string &ph = ev.get("ph").asString();
        if (ph == "M") {
            EXPECT_EQ(ev.get("name").asString(), "thread_name");
            threadNames.push_back(
                ev.get("args").get("name").asString());
            continue;
        }
        EXPECT_GE(ev.get("ts").asNumber(), 0.0);
        if (ph == "X" && ev.get("cat").asString() == "cell") {
            sawCell = true;
            EXPECT_EQ(ev.get("name").asString(), "fig7");
            EXPECT_GE(ev.get("dur").asNumber(), 0.0);
            EXPECT_EQ(ev.get("args").get("cell").asNumber(), 41.0);
        } else if (ph == "i") {
            sawSteal = true;
            EXPECT_EQ(ev.get("cat").asString(), "steal");
            EXPECT_EQ(ev.get("s").asString(), "t");
            EXPECT_FALSE(ev.has("dur"));
        } else if (ph == "X" &&
                   ev.get("cat").asString() == "sched") {
            sawIdle = true;
            EXPECT_EQ(ev.get("name").asString(), "idle");
        }
    }
    EXPECT_EQ(threadNames,
              (std::vector<std::string>{"main", "worker 0"}));
    EXPECT_TRUE(sawCell);
    EXPECT_TRUE(sawSteal);
    EXPECT_TRUE(sawIdle);
}

TEST(SpanTrace, UnnamedThreadsGetPlaceholderNames)
{
    SpanRecorder rec;
    InstallGuard guard(&rec);
    std::thread worker([] { spanInstant("cat", "hello"); });
    worker.join();

    std::ostringstream os;
    rec.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    ASSERT_GE(doc.get("traceEvents").size(), 1u);
    const Json &meta = doc.get("traceEvents").at(0);
    EXPECT_EQ(meta.get("ph").asString(), "M");
    EXPECT_EQ(meta.get("args").get("name").asString(), "thread 1");
}

TEST(SpanTrace, RingKeepsMostRecentEventsAndCountsDrops)
{
    SpanRecorder rec(/*per_thread_capacity=*/4);
    InstallGuard guard(&rec);
    for (int i = 0; i < 10; ++i)
        rec.span("cat", "s" + std::to_string(i), 100 * i, 1);

    EXPECT_EQ(rec.dropped(), 6u);
    std::ostringstream os;
    rec.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    const Json &events = doc.get("traceEvents");
    // 1 metadata row + the 4 retained spans, oldest first.
    ASSERT_EQ(events.size(), 5u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_EQ(events.at(i).get("name").asString(),
                  "s" + std::to_string(i + 5));
}

TEST(SpanTrace, LongNamesAreTruncatedNotCorrupted)
{
    SpanRecorder rec;
    InstallGuard guard(&rec);
    const std::string longName(100, 'x');
    rec.span("cat", longName, 0, 1);

    std::ostringstream os;
    rec.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    const Json &span = doc.get("traceEvents").at(1);
    const std::string &name = span.get("name").asString();
    EXPECT_EQ(name, std::string(SpanEvent::kNameCap - 1, 'x'));
}

TEST(SpanTrace, ThreadLocalCacheDoesNotLeakAcrossRecorders)
{
    {
        SpanRecorder first;
        InstallGuard guard(&first);
        spanInstant("cat", "one");
        EXPECT_EQ(first.threadCount(), 1u);
    }
    // A second recorder (possibly at the same address) must see this
    // thread register a fresh ring, not scribble on a stale pointer.
    SpanRecorder second;
    InstallGuard guard(&second);
    spanInstant("cat", "two");
    EXPECT_EQ(second.threadCount(), 1u);

    std::ostringstream os;
    second.exportChromeTrace(os);
    const Json doc = Json::parse(os.str());
    ASSERT_EQ(doc.get("traceEvents").size(), 2u);
    EXPECT_EQ(doc.get("traceEvents").at(1).get("name").asString(),
              "two");
}

TEST(SpanTrace, WriteFileRoundTripsAndFailsCleanly)
{
    SpanRecorder rec;
    InstallGuard guard(&rec);
    SpanRecorder::nameThisThread("main");
    rec.span("cell", "t", 0, 1000);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "bpsim_test_span_trace.json")
            .string();
    ASSERT_TRUE(rec.writeFile(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NO_THROW(Json::parse(buf.str()));
    std::remove(path.c_str());

    EXPECT_FALSE(rec.writeFile("/no/such/dir/timeline.json"));
}

} // namespace
} // namespace bpsim::obs
