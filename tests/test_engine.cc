/** @file Tests for the cycle-level gshare.fast pipeline engine,
 *  including the E12 equivalence property against the functional
 *  model. */

#include "pipeline/gshare_fast_engine.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictors/gshare_fast.hh"

namespace bpsim {
namespace {

GshareFastEngine::Config
cfg(std::size_t entries, unsigned latency, unsigned bpc = 1,
    unsigned delay = 0)
{
    GshareFastEngine::Config c;
    c.entries = entries;
    c.phtLatency = latency;
    c.branchesPerCycle = bpc;
    c.updateDelay = delay;
    return c;
}

TEST(Engine, BufferSizingFollowsSection331)
{
    // B * 2^L entries (Section 3.3.1): 8 branches/block at latency 3
    // needs 64 entries, the paper's example.
    EXPECT_EQ(GshareFastEngine(cfg(1 << 14, 3, 8)).bufferEntries(),
              64u);
    EXPECT_EQ(GshareFastEngine(cfg(1 << 14, 3, 1)).bufferEntries(),
              8u);
    EXPECT_EQ(GshareFastEngine(cfg(1 << 14, 5, 2)).bufferEntries(),
              64u);
}

TEST(Engine, OutstandingBookkeeping)
{
    GshareFastEngine e(cfg(1 << 12, 3));
    EXPECT_EQ(e.outstanding(), 0u);
    e.predictBranch(0x100);
    e.predictBranch(0x200);
    EXPECT_EQ(e.outstanding(), 2u);
    e.resolve(true);
    EXPECT_EQ(e.outstanding(), 1u);
    e.recover();
    EXPECT_EQ(e.outstanding(), 0u);
}

TEST(Engine, CycleAdvancesOncePerBranchAtWidthOne)
{
    GshareFastEngine e(cfg(1 << 12, 3));
    const Cycle c0 = e.cycle();
    e.predictBranch(0x100); // same cycle as construction
    e.predictBranch(0x100); // forces an advance
    e.predictBranch(0x100);
    EXPECT_EQ(e.cycle(), c0 + 2);
    e.tickIdle();
    EXPECT_EQ(e.cycle(), c0 + 3);
}

TEST(Engine, WidthTwoPacksTwoBranchesPerCycle)
{
    GshareFastEngine e(cfg(1 << 12, 3, 2));
    e.predictBranch(0x100);
    e.predictBranch(0x200);
    EXPECT_EQ(e.cycle(), 0u);
    e.predictBranch(0x300); // third branch starts cycle 1
    EXPECT_EQ(e.cycle(), 1u);
}

TEST(Engine, LearnsAllTakenStream)
{
    GshareFastEngine e(cfg(1 << 12, 3));
    unsigned wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool pred = e.predictBranch(0x40);
        if (!e.resolve(true)) {
            ++wrong;
            e.recover();
        }
        EXPECT_EQ(pred, pred);
    }
    EXPECT_LT(wrong, 40u) << "history warm-up only";
}

/**
 * E12: driven one branch per cycle with immediate resolution and
 * recovery, the pipelined engine with PHT latency L produces exactly
 * the prediction stream of the functional model with row lag L-1.
 */
class EquivalenceTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(EquivalenceTest, EngineMatchesFunctionalModel)
{
    const unsigned lg_entries = std::get<0>(GetParam());
    const unsigned latency = std::get<1>(GetParam());
    const std::size_t entries = std::size_t{1} << lg_entries;

    GshareFastEngine engine(cfg(entries, latency));
    GshareFastPredictor model(entries, latency - 1, 0);

    Rng rng(0xf00d + latency);
    std::vector<bool> hist(16, false);
    for (int i = 0; i < 30000; ++i) {
        const Addr pc = 0x8000 + (rng.next() % 200) * 16;
        // Structured outcome stream: periodic + history echo + noise.
        bool taken;
        if (rng.nextBool(0.2))
            taken = rng.nextBool(0.5);
        else if (i % 3 == 0)
            taken = hist[hist.size() - 5];
        else
            taken = i % 7 != 0;
        hist.push_back(taken);

        const bool ep = engine.predictBranch(pc);
        const bool mp = model.predict(pc);
        ASSERT_EQ(ep, mp) << "diverged at step " << i;

        model.update(pc, taken);
        if (!engine.resolve(taken))
            engine.recover();
    }
}

INSTANTIATE_TEST_SUITE_P(
    LatencyAndSize, EquivalenceTest,
    ::testing::Combine(::testing::Values(10u, 14u, 18u, 21u),
                       ::testing::Values(1u, 2u, 3u, 5u, 11u)));

TEST(Engine, UpdateDelayMatchesFunctionalModel)
{
    GshareFastEngine engine(cfg(1 << 13, 3, 1, 64));
    GshareFastPredictor model(1 << 13, 2, 64);
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr pc = 0x8000 + (rng.next() % 64) * 16;
        const bool taken = rng.nextBool(0.8);
        ASSERT_EQ(engine.predictBranch(pc), model.predict(pc))
            << "step " << i;
        model.update(pc, taken);
        if (!engine.resolve(taken))
            engine.recover();
    }
}

TEST(Engine, RecoveryRestoresNonSpeculativeState)
{
    GshareFastEngine e(cfg(1 << 12, 3));
    // Predict a run without resolving: speculative state runs ahead.
    for (int i = 0; i < 5; ++i)
        e.predictBranch(0x100 + i * 16);
    EXPECT_EQ(e.outstanding(), 5u);
    // Resolve the first as mispredicted, recover: younger
    // speculative work is squashed.
    e.resolve(false);
    e.recover();
    EXPECT_EQ(e.outstanding(), 0u);
    // The engine keeps functioning and learning afterwards.
    unsigned wrong = 0;
    for (int i = 0; i < 1000; ++i) {
        e.predictBranch(0x100);
        if (!e.resolve(true)) {
            ++wrong;
            e.recover();
        }
    }
    EXPECT_LT(wrong, 40u) << "history warm-up only";
}

TEST(Engine, StorageBitsMatchGeometry)
{
    GshareFastEngine e(cfg(1 << 15, 3));
    EXPECT_EQ(e.storageBits(), (1u << 15) * 2 + 15u);
    EXPECT_EQ(e.selectBits(), 9u);
}

} // namespace
} // namespace bpsim
