/**
 * @file
 * Unit tests for the obs metric primitives: counter/gauge semantics,
 * log2-histogram bucket math, registry find-or-create and lookup,
 * disabled-mode sink behaviour, JSON snapshots and ScopedTimer.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/metrics.hh"
#include "obs/timer.hh"

using namespace bpsim::obs;

TEST(CounterMetric, AddSetReset)
{
    CounterMetric c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.set(7);
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeMetric, LastWriteWins)
{
    GaugeMetric g;
    g.set(1.5);
    g.set(-2.25);
    EXPECT_DOUBLE_EQ(g.value(), -2.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Log2Histogram, BucketOfMatchesFloorLog2)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(7), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(8), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(1023), 9u);
    EXPECT_EQ(Log2Histogram::bucketOf(1024), 10u);
    EXPECT_EQ(Log2Histogram::bucketOf(UINT64_MAX), 63u);
}

TEST(Log2Histogram, BucketLowIsInverseOfBucketOf)
{
    for (unsigned i = 0; i < Log2Histogram::kBuckets; ++i)
        EXPECT_EQ(Log2Histogram::bucketOf(Log2Histogram::bucketLow(i)),
                  i);
}

TEST(Log2Histogram, RecordAccumulates)
{
    Log2Histogram h;
    EXPECT_EQ(h.maxBucket(), -1);
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(5);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.sum(), 11u);
    EXPECT_DOUBLE_EQ(h.mean(), 11.0 / 4.0);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(2), 2u);
    EXPECT_EQ(h.count(1), 0u);
    EXPECT_EQ(h.maxBucket(), 2);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.maxBucket(), -1);
}

TEST(MetricRegistry, FindOrCreateReturnsStableHandles)
{
    MetricRegistry reg;
    CounterMetric &a = reg.counter("sim.core.cycles");
    a.add(10);
    CounterMetric &b = reg.counter("sim.core.cycles");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 10u);

    // Handles survive further registration (deque storage).
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i)).add(1);
    EXPECT_EQ(a.value(), 10u);
    EXPECT_EQ(reg.findCounter("sim.core.cycles")->value(), 10u);
}

TEST(MetricRegistry, LookupByNameAndType)
{
    MetricRegistry reg;
    reg.counter("x").add(1);
    reg.gauge("y").set(2.0);
    reg.histogram("z").record(4);

    EXPECT_NE(reg.findCounter("x"), nullptr);
    EXPECT_EQ(reg.findCounter("y"), nullptr); // y is a gauge
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("y")->value(), 2.0);
    EXPECT_EQ(reg.findHistogram("z")->total(), 1u);

    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "x");
    EXPECT_EQ(names[1], "y");
    EXPECT_EQ(names[2], "z");
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricRegistry, DisabledModeRegistersNothing)
{
    MetricRegistry reg(false);
    EXPECT_FALSE(reg.enabled());

    // Instrumented code runs unconditionally against the sink...
    reg.counter("sim.core.cycles").add(123);
    reg.gauge("ipc").set(1.5);
    reg.histogram("lat").record(9);

    // ...but nothing is registered or exported.
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_TRUE(reg.names().empty());
    EXPECT_EQ(reg.findCounter("sim.core.cycles"), nullptr);
    EXPECT_EQ(reg.toJson().size(), 0u);

    // All disabled lookups alias the same sink per type.
    EXPECT_EQ(&reg.counter("a"), &reg.counter("b"));
    EXPECT_EQ(&reg.gauge("a"), &reg.gauge("b"));
    EXPECT_EQ(&reg.histogram("a"), &reg.histogram("b"));
}

TEST(MetricRegistry, JsonSnapshotShape)
{
    MetricRegistry reg;
    reg.counter(labeledName("sim.core.flush_cycles", "cause",
                            "override"))
        .add(7);
    reg.gauge("ipc").set(1.25);
    auto &h = reg.histogram("lat");
    h.record(1);
    h.record(6);

    const Json j = reg.toJson();
    EXPECT_DOUBLE_EQ(
        j.get("sim.core.flush_cycles{cause=override}").asNumber(),
        7.0);
    EXPECT_DOUBLE_EQ(j.get("ipc").asNumber(), 1.25);
    const Json &hist = j.get("lat");
    EXPECT_DOUBLE_EQ(hist.get("total").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hist.get("sum").asNumber(), 7.0);
    // bucket keyed by its low edge: 6 lands in [4,8).
    EXPECT_DOUBLE_EQ(hist.get("buckets").get("4").asNumber(), 1.0);
}

TEST(MetricRegistry, ClearDropsMetrics)
{
    MetricRegistry reg;
    reg.counter("x").add(1);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
    EXPECT_EQ(reg.findCounter("x"), nullptr);
}

TEST(ScopedTimer, RecordsIntoProfileZone)
{
    MetricRegistry reg;
    {
        ScopedTimer t(reg, "fetch");
        (void)t;
    }
    const auto *h = reg.findHistogram("profile.fetch.ns");
    const auto *c = reg.findCounter("profile.fetch.total_ns");
    ASSERT_NE(h, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(h->total(), 1u);
    EXPECT_EQ(c->value(), h->sum());
}

TEST(ScopedTimer, DisabledRegistryStaysEmpty)
{
    MetricRegistry reg(false);
    {
        ScopedTimer t(reg, "fetch");
        (void)t;
    }
    EXPECT_EQ(reg.size(), 0u);
}
