/** @file Tests for the fetch-side delay wrappers. */

#include "pipeline/fetch_predictor.hh"

#include <gtest/gtest.h>

#include "predictors/gshare.hh"
#include "predictors/static_pred.hh"

namespace bpsim {
namespace {

TEST(SingleCycle, NeverBubbles)
{
    SingleCycleFetchPredictor p(std::make_unique<StaticPredictor>(true));
    for (int i = 0; i < 100; ++i) {
        const auto fp = p.predict(0x100 + i * 16);
        EXPECT_TRUE(fp.taken);
        EXPECT_EQ(fp.bubbleCycles, 0u);
        p.update(0x100 + i * 16, i % 2 == 0);
    }
}

TEST(Overriding, AgreementCostsNothing)
{
    // Quick and slow both always-taken: never a bubble.
    OverridingFetchPredictor p(std::make_unique<StaticPredictor>(true),
                               std::make_unique<StaticPredictor>(true),
                               4);
    for (int i = 0; i < 50; ++i) {
        const auto fp = p.predict(0x40);
        EXPECT_TRUE(fp.taken);
        EXPECT_EQ(fp.bubbleCycles, 0u);
        p.update(0x40, true);
    }
    EXPECT_EQ(p.disagreements().hits(), 0u);
    EXPECT_EQ(p.disagreements().total(), 50u);
}

TEST(Overriding, DisagreementCostsSlowLatencyAndSlowWins)
{
    OverridingFetchPredictor p(
        std::make_unique<StaticPredictor>(true),
        std::make_unique<StaticPredictor>(false), 7);
    const auto fp = p.predict(0x40);
    EXPECT_FALSE(fp.taken) << "the slow predictor's answer is final";
    EXPECT_EQ(fp.bubbleCycles, 7u);
    EXPECT_EQ(p.disagreements().hits(), 1u);
    EXPECT_EQ(p.slowLatency(), 7u);
}

TEST(Overriding, TracksDisagreementRateOnRealPredictors)
{
    // A warm slow predictor corrects a cold quick one on a
    // structured stream, producing a nonzero but sub-50% rate.
    OverridingFetchPredictor p(
        std::make_unique<GsharePredictor>(64),
        std::make_unique<GsharePredictor>(1 << 14), 3);
    std::uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 20000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const Addr pc = 0x100 + (x % 96) * 16;
        const bool taken = (x >> 13) % 5 != 0;
        p.predict(pc);
        p.update(pc, taken);
    }
    const double rate = p.disagreements().rate();
    EXPECT_GT(rate, 0.0);
    EXPECT_LT(rate, 0.5);
}

TEST(Overriding, StorageIsQuickPlusSlow)
{
    OverridingFetchPredictor p(
        std::make_unique<GsharePredictor>(2048),
        std::make_unique<GsharePredictor>(1 << 16), 3);
    EXPECT_EQ(p.storageBits(),
              p.quick().storageBits() + p.slow().storageBits());
    EXPECT_NE(p.name().find("overriding"), std::string::npos);
}

TEST(Delayed, EveryPredictionBubbles)
{
    DelayedFetchPredictor p(std::make_unique<StaticPredictor>(true), 5);
    for (int i = 0; i < 10; ++i) {
        const auto fp = p.predict(0x40);
        EXPECT_EQ(fp.bubbleCycles, 4u) << "latency - 1 stall cycles";
        p.update(0x40, true);
    }
}

TEST(Delayed, SingleCycleLatencyMeansNoBubble)
{
    DelayedFetchPredictor p(std::make_unique<StaticPredictor>(true), 1);
    EXPECT_EQ(p.predict(0x40).bubbleCycles, 0u);
}

} // namespace
} // namespace bpsim
