/**
 * @file
 * Contract tests for the artifact registry (bench/artifact_registry):
 * stable unique names, and the determinism guarantee the sweep
 * engine rests on — every artifact produces byte-identical RunReport
 * rows and table text whether its body runs against a private
 * CellPool (the standalone bench) or a SweepPool sharing one
 * SweepScheduler with the other thirteen artifacts (bpsweep).
 */

#include "artifact_registry.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "parallel/cell_pool.hh"
#include "parallel/sweep_scheduler.hh"
#include "trace/shared_trace_pool.hh"

namespace bpsim {
namespace {

TEST(ArtifactRegistry, NamesAreUniqueAndStable)
{
    const auto &defs = artifactRegistry();
    ASSERT_EQ(defs.size(), 14u);

    std::set<std::string> names;
    for (const auto &def : defs) {
        EXPECT_FALSE(def.spec.name.empty());
        EXPECT_FALSE(def.spec.title.empty());
        EXPECT_NE(def.fn, nullptr) << def.spec.name;
        EXPECT_TRUE(names.insert(def.spec.name).second)
            << "duplicate artifact name " << def.spec.name;
    }

    // These names are CLI arguments, report 'experiment' fields and
    // CI job configuration — renaming one is a breaking change, so
    // pin the full set.
    const std::set<std::string> expected = {
        "fig1_accuracy_budget", "fig2_ideal_vs_overriding",
        "fig5_accuracy_large",  "fig6_per_benchmark_accuracy",
        "fig7_ipc_budget",      "fig8_per_benchmark_ipc",
        "table2_access_delay",  "ablation_update_delay",
        "ablation_delay_hiding", "ablation_pipeline",
        "study_disagreement",   "study_pipeline_depth",
        "study_context_switch", "study_soft_error",
    };
    EXPECT_EQ(names, expected);
}

TEST(ArtifactRegistry, FindArtifactResolvesEveryNameOnly)
{
    for (const auto &def : artifactRegistry()) {
        const ArtifactDef *found = findArtifact(def.spec.name);
        ASSERT_NE(found, nullptr) << def.spec.name;
        EXPECT_EQ(found, &def);
    }
    EXPECT_EQ(findArtifact("no_such_artifact"), nullptr);
    EXPECT_EQ(findArtifact(""), nullptr);
}

/** One artifact's complete observable behavior. */
struct Capture
{
    int exitCode = 0;
    std::string output;
    std::string rowsJson; ///< report minus the metrics snapshot
};

std::string
rowsOnlyJson(const obs::RunReport &report)
{
    obs::RunReport stripped = report;
    stripped.metrics = obs::Json();
    return stripped.toJson().dump(2);
}

TEST(ArtifactRegistry, SweepRunsAreByteIdenticalToStandaloneRuns)
{
    // Small but non-trivial traces; enough cells that the sweep
    // genuinely interleaves artifacts on the shared workers.
    ASSERT_EQ(0, setenv("BPSIM_OPS_PER_WORKLOAD", "1000", 1));
    ASSERT_EQ(0, unsetenv("BPSIM_TRACE_CACHE"));
    ASSERT_EQ(0, unsetenv("BPSIM_JOBS"));
    SharedTracePool::global().clear();

    const auto &defs = artifactRegistry();

    // Standalone shape: each body on its own private CellPool, one
    // after another (what `bench/<name> --jobs 4 --report ...` does,
    // minus the CLI).
    std::vector<Capture> solo(defs.size());
    for (std::size_t i = 0; i < defs.size(); ++i) {
        parallel::CellPool pool(4);
        BufferedSweepContext ctx(defs[i].spec, &pool,
                                 /*want_report=*/true);
        solo[i].exitCode = defs[i].fn(defs[i].spec, ctx);
        ctx.finalize();
        solo[i].output = ctx.output();
        solo[i].rowsJson = rowsOnlyJson(ctx.report());
        EXPECT_EQ(solo[i].exitCode, 0) << defs[i].spec.name;
    }

    // Sweep shape: all fourteen bodies concurrently, each on a
    // SweepPool view of one shared 4-worker scheduler (what bpsweep
    // --all --jobs 4 does, minus the CLI).
    std::vector<Capture> swept(defs.size());
    {
        parallel::SweepScheduler scheduler(4);
        std::vector<std::unique_ptr<parallel::SweepPool>> pools;
        std::vector<std::unique_ptr<BufferedSweepContext>> contexts;
        for (const auto &def : defs) {
            pools.push_back(std::make_unique<parallel::SweepPool>(
                scheduler, def.spec.name));
            contexts.push_back(
                std::make_unique<BufferedSweepContext>(
                    def.spec, pools.back().get(),
                    /*want_report=*/true));
        }
        std::vector<std::thread> drivers;
        for (std::size_t i = 0; i < defs.size(); ++i)
            drivers.emplace_back([&, i] {
                swept[i].exitCode =
                    defs[i].fn(defs[i].spec, *contexts[i]);
                contexts[i]->finalize();
            });
        for (auto &t : drivers)
            t.join();
        for (std::size_t i = 0; i < defs.size(); ++i) {
            swept[i].output = contexts[i]->output();
            swept[i].rowsJson = rowsOnlyJson(contexts[i]->report());
        }
        contexts.clear();
        pools.clear(); // all SweepPools die before the scheduler
    }

    for (std::size_t i = 0; i < defs.size(); ++i) {
        EXPECT_EQ(swept[i].exitCode, solo[i].exitCode)
            << defs[i].spec.name;
        EXPECT_EQ(swept[i].output, solo[i].output)
            << defs[i].spec.name;
        EXPECT_EQ(swept[i].rowsJson, solo[i].rowsJson)
            << defs[i].spec.name;
    }
}

} // namespace
} // namespace bpsim
