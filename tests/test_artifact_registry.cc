/**
 * @file
 * Contract tests for the artifact registry (bench/artifact_registry):
 * stable unique names, and the determinism guarantee the sweep
 * engine rests on — every artifact produces byte-identical RunReport
 * rows and table text whether its body runs against a private
 * CellPool (the standalone bench) or a SweepPool sharing one
 * SweepScheduler with the other thirteen artifacts (bpsweep).
 */

#include "artifact_registry.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/span_trace.hh"
#include "parallel/cell_pool.hh"
#include "parallel/sweep_scheduler.hh"
#include "trace/shared_trace_pool.hh"

namespace bpsim {
namespace {

TEST(ArtifactRegistry, NamesAreUniqueAndStable)
{
    const auto &defs = artifactRegistry();
    ASSERT_EQ(defs.size(), 16u);

    std::set<std::string> names;
    for (const auto &def : defs) {
        EXPECT_FALSE(def.spec.name.empty());
        EXPECT_FALSE(def.spec.title.empty());
        EXPECT_NE(def.fn, nullptr) << def.spec.name;
        EXPECT_TRUE(names.insert(def.spec.name).second)
            << "duplicate artifact name " << def.spec.name;
    }

    // These names are CLI arguments, report 'experiment' fields and
    // CI job configuration — renaming one is a breaking change, so
    // pin the full set.
    const std::set<std::string> expected = {
        "fig1_accuracy_budget", "fig2_ideal_vs_overriding",
        "fig5_accuracy_large",  "fig6_per_benchmark_accuracy",
        "fig7_ipc_budget",      "fig8_per_benchmark_ipc",
        "table2_access_delay",  "ablation_update_delay",
        "ablation_delay_hiding", "ablation_pipeline",
        "study_disagreement",   "study_pipeline_depth",
        "study_context_switch", "study_soft_error",
        "study_protection_surface", "study_field_vulnerability",
    };
    EXPECT_EQ(names, expected);
}

TEST(ArtifactRegistry, FindArtifactResolvesEveryNameOnly)
{
    for (const auto &def : artifactRegistry()) {
        const ArtifactDef *found = findArtifact(def.spec.name);
        ASSERT_NE(found, nullptr) << def.spec.name;
        EXPECT_EQ(found, &def);
    }
    EXPECT_EQ(findArtifact("no_such_artifact"), nullptr);
    EXPECT_EQ(findArtifact(""), nullptr);
}

/** One artifact's complete observable behavior. */
struct Capture
{
    int exitCode = 0;
    std::string output;
    std::string rowsJson; ///< report minus the metrics snapshot
};

std::string
rowsOnlyJson(const obs::RunReport &report)
{
    obs::RunReport stripped = report;
    stripped.metrics = obs::Json();
    return stripped.toJson().dump(2);
}

TEST(ArtifactRegistry, SweepRunsAreByteIdenticalToStandaloneRuns)
{
    // Small but non-trivial traces; enough cells that the sweep
    // genuinely interleaves artifacts on the shared workers.
    ASSERT_EQ(0, setenv("BPSIM_OPS_PER_WORKLOAD", "1000", 1));
    ASSERT_EQ(0, unsetenv("BPSIM_TRACE_CACHE"));
    ASSERT_EQ(0, unsetenv("BPSIM_JOBS"));
    SharedTracePool::global().clear();

    const auto &defs = artifactRegistry();

    // Standalone shape: each body on its own private CellPool, one
    // after another (what `bench/<name> --jobs 4 --report ...` does,
    // minus the CLI).
    std::vector<Capture> solo(defs.size());
    for (std::size_t i = 0; i < defs.size(); ++i) {
        parallel::CellPool pool(4);
        BufferedSweepContext ctx(defs[i].spec, &pool,
                                 /*want_report=*/true);
        solo[i].exitCode = defs[i].fn(defs[i].spec, ctx);
        ctx.finalize();
        solo[i].output = ctx.output();
        solo[i].rowsJson = rowsOnlyJson(ctx.report());
        EXPECT_EQ(solo[i].exitCode, 0) << defs[i].spec.name;
    }

    // Sweep shape: all registered artifact bodies concurrently, each on a
    // SweepPool view of one shared 4-worker scheduler (what bpsweep
    // --all --jobs 4 does, minus the CLI).
    std::vector<Capture> swept(defs.size());
    {
        parallel::SweepScheduler scheduler(4);
        std::vector<std::unique_ptr<parallel::SweepPool>> pools;
        std::vector<std::unique_ptr<BufferedSweepContext>> contexts;
        for (const auto &def : defs) {
            pools.push_back(std::make_unique<parallel::SweepPool>(
                scheduler, def.spec.name));
            contexts.push_back(
                std::make_unique<BufferedSweepContext>(
                    def.spec, pools.back().get(),
                    /*want_report=*/true));
        }
        std::vector<std::thread> drivers;
        for (std::size_t i = 0; i < defs.size(); ++i)
            drivers.emplace_back([&, i] {
                swept[i].exitCode =
                    defs[i].fn(defs[i].spec, *contexts[i]);
                contexts[i]->finalize();
            });
        for (auto &t : drivers)
            t.join();
        for (std::size_t i = 0; i < defs.size(); ++i) {
            swept[i].output = contexts[i]->output();
            swept[i].rowsJson = rowsOnlyJson(contexts[i]->report());
        }
        contexts.clear();
        pools.clear(); // all SweepPools die before the scheduler
    }

    for (std::size_t i = 0; i < defs.size(); ++i) {
        EXPECT_EQ(swept[i].exitCode, solo[i].exitCode)
            << defs[i].spec.name;
        EXPECT_EQ(swept[i].output, solo[i].output)
            << defs[i].spec.name;
        EXPECT_EQ(swept[i].rowsJson, solo[i].rowsJson)
            << defs[i].spec.name;
    }
}

TEST(ArtifactRegistry,
     SweepRowsAreByteIdenticalWithFlightRecorderInstalled)
{
    // The flight recorder observes the harness only; rows and table
    // text must not change when it is installed (the --timeline
    // variant of the determinism contract). A subset of artifacts
    // keeps this affordable next to the full-suite test above.
    ASSERT_EQ(0, setenv("BPSIM_OPS_PER_WORKLOAD", "500", 1));
    ASSERT_EQ(0, unsetenv("BPSIM_TRACE_CACHE"));
    ASSERT_EQ(0, unsetenv("BPSIM_JOBS"));
    SharedTracePool::global().clear();

    const auto &all = artifactRegistry();
    const std::vector<const ArtifactDef *> defs = {
        &all[0], &all[1], &all[2], &all[3]};

    std::vector<Capture> solo(defs.size());
    for (std::size_t i = 0; i < defs.size(); ++i) {
        parallel::CellPool pool(4);
        BufferedSweepContext ctx(defs[i]->spec, &pool,
                                 /*want_report=*/true);
        solo[i].exitCode = defs[i]->fn(defs[i]->spec, ctx);
        ctx.finalize();
        solo[i].output = ctx.output();
        solo[i].rowsJson = rowsOnlyJson(ctx.report());
    }

    std::vector<Capture> swept(defs.size());
    auto recorder = std::make_unique<obs::SpanRecorder>();
    obs::SpanRecorder::install(recorder.get());
    {
        parallel::SweepScheduler scheduler(4);
        std::vector<std::unique_ptr<parallel::SweepPool>> pools;
        std::vector<std::unique_ptr<BufferedSweepContext>> contexts;
        for (const auto *def : defs) {
            pools.push_back(std::make_unique<parallel::SweepPool>(
                scheduler, def->spec.name));
            contexts.push_back(
                std::make_unique<BufferedSweepContext>(
                    def->spec, pools.back().get(),
                    /*want_report=*/true));
        }
        std::vector<std::thread> drivers;
        for (std::size_t i = 0; i < defs.size(); ++i)
            drivers.emplace_back([&, i] {
                obs::SpanRecorder::nameThisThread(
                    "driver " + defs[i]->spec.name);
                swept[i].exitCode =
                    defs[i]->fn(defs[i]->spec, *contexts[i]);
                contexts[i]->finalize();
            });
        for (auto &t : drivers)
            t.join();
        for (std::size_t i = 0; i < defs.size(); ++i) {
            swept[i].output = contexts[i]->output();
            swept[i].rowsJson = rowsOnlyJson(contexts[i]->report());
        }
        contexts.clear();
        pools.clear();
    }
    obs::SpanRecorder::install(nullptr);

    for (std::size_t i = 0; i < defs.size(); ++i) {
        EXPECT_EQ(swept[i].exitCode, solo[i].exitCode)
            << defs[i]->spec.name;
        EXPECT_EQ(swept[i].output, solo[i].output)
            << defs[i]->spec.name;
        EXPECT_EQ(swept[i].rowsJson, solo[i].rowsJson)
            << defs[i]->spec.name;
    }
    // The sweep actually recorded something: worker + driver rings.
    EXPECT_GT(recorder->threadCount(), 4u);
}

int
orderedOkBody(const ArtifactSpec &spec, SweepContext &ctx)
{
    ctx.printf("%s: header\n", spec.name.c_str());
    ctx.pool()->run(
        3, [](std::size_t) {},
        [&](std::size_t i) {
            ctx.printf("%s: cell %zu committed\n",
                       spec.name.c_str(), i);
        });
    ctx.printf("%s: footer\n", spec.name.c_str());
    return 0;
}

int
orderedFailingBody(const ArtifactSpec &spec, SweepContext &ctx)
{
    ctx.printf("%s: header\n", spec.name.c_str());
    ctx.pool()->run(
        4,
        [](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("cell 2 exploded");
        },
        [&](std::size_t i) {
            ctx.printf("%s: cell %zu committed\n",
                       spec.name.c_str(), i);
        });
    ctx.printf("%s: footer\n", spec.name.c_str());
    return 0;
}

ArtifactSpec
probeSpec(const std::string &name, const std::string &title)
{
    ArtifactSpec spec;
    spec.name = name;
    spec.title = title;
    return spec;
}

TEST(ArtifactRegistry, BufferedOutputStaysOrderedWhenABodyFails)
{
    // A mid-sweep compute failure must not garble the other
    // artifacts' buffered output, and the failing artifact's buffer
    // must hold exactly the text committed before the failing index
    // (the CellPool contract: commits happen in index order, and the
    // lowest-index failure stops the committer).
    ArtifactDef alpha{probeSpec("alpha", "ok artifact"),
                      &orderedOkBody};
    ArtifactDef beta{probeSpec("beta", "failing artifact"),
                     &orderedFailingBody};
    ArtifactDef gamma{probeSpec("gamma", "ok artifact"),
                      &orderedOkBody};
    const std::vector<const ArtifactDef *> defs = {&alpha, &beta,
                                                   &gamma};

    std::vector<Capture> res(defs.size());
    std::vector<std::string> errors(defs.size());
    {
        parallel::SweepScheduler scheduler(2);
        std::vector<std::unique_ptr<parallel::SweepPool>> pools;
        std::vector<std::unique_ptr<BufferedSweepContext>> contexts;
        for (const auto *def : defs) {
            pools.push_back(std::make_unique<parallel::SweepPool>(
                scheduler, def->spec.name));
            contexts.push_back(
                std::make_unique<BufferedSweepContext>(
                    def->spec, pools.back().get(),
                    /*want_report=*/false));
        }
        std::vector<std::thread> drivers;
        for (std::size_t i = 0; i < defs.size(); ++i)
            drivers.emplace_back([&, i] {
                // The bpsweep driver shape: catch, record, finalize.
                try {
                    res[i].exitCode =
                        defs[i]->fn(defs[i]->spec, *contexts[i]);
                } catch (const std::exception &e) {
                    res[i].exitCode = 1;
                    errors[i] = e.what();
                }
                contexts[i]->finalize();
            });
        for (auto &t : drivers)
            t.join();
        for (std::size_t i = 0; i < defs.size(); ++i)
            res[i].output = contexts[i]->output();
        contexts.clear();
        pools.clear();
    }

    const std::string okOutput =
        "{0}: header\n"
        "{0}: cell 0 committed\n"
        "{0}: cell 1 committed\n"
        "{0}: cell 2 committed\n"
        "{0}: footer\n";
    const auto expand = [](std::string tmpl, const std::string &n) {
        std::string out;
        std::size_t pos = 0, hit;
        while ((hit = tmpl.find("{0}", pos)) != std::string::npos) {
            out += tmpl.substr(pos, hit - pos);
            out += n;
            pos = hit + 3;
        }
        out += tmpl.substr(pos);
        return out;
    };

    EXPECT_EQ(res[0].exitCode, 0);
    EXPECT_EQ(res[0].output, expand(okOutput, "alpha"));
    EXPECT_EQ(res[2].exitCode, 0);
    EXPECT_EQ(res[2].output, expand(okOutput, "gamma"));

    EXPECT_EQ(res[1].exitCode, 1);
    EXPECT_EQ(errors[1], "cell 2 exploded");
    EXPECT_EQ(res[1].output, "beta: header\n"
                             "beta: cell 0 committed\n"
                             "beta: cell 1 committed\n");
}

TEST(ArtifactRegistry, StandaloneTraceWithJobsWarnsSerialFallback)
{
    const ArtifactSpec spec =
        probeSpec("warn_probe", "warning probe");
    const std::string tracePath =
        (std::filesystem::temp_directory_path() /
         "bpsim_test_warn_probe_trace.json")
            .string();

    BenchArgs traced;
    traced.trace = tracePath;
    traced.jobs = 4;
    testing::internal::CaptureStderr();
    {
        StandaloneSweepContext ctx(spec, traced);
    }
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("--trace forces serial cell execution"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("--jobs 4 ignored"), std::string::npos) << err;

    // No warning without --trace, or when the run is serial anyway.
    BenchArgs untraced;
    untraced.jobs = 4;
    testing::internal::CaptureStderr();
    {
        StandaloneSweepContext ctx(spec, untraced);
    }
    err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("serial cell execution"), std::string::npos)
        << err;

    BenchArgs serialTraced;
    serialTraced.trace = tracePath;
    serialTraced.jobs = 1;
    testing::internal::CaptureStderr();
    {
        StandaloneSweepContext ctx(spec, serialTraced);
    }
    err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(err.find("serial cell execution"), std::string::npos)
        << err;

    std::remove(tracePath.c_str());
}

} // namespace
} // namespace bpsim
