/** @file Tests for the predictor factory and delay assignments. */

#include "core/factory.hh"

#include <gtest/gtest.h>

#include <set>

namespace bpsim {
namespace {

class FactoryKindTest : public ::testing::TestWithParam<PredictorKind>
{
};

TEST_P(FactoryKindTest, ConstructsAtEveryPaperBudget)
{
    for (std::size_t budget : figure1BudgetsBytes()) {
        auto p = makePredictor(GetParam(), budget);
        ASSERT_NE(p, nullptr);
        EXPECT_GT(p->storageBits(), 0u);
    }
}

TEST_P(FactoryKindTest, StorageTracksBudget)
{
    for (std::size_t budget : largeBudgetsBytes()) {
        auto p = makePredictor(GetParam(), budget);
        // Power-of-two rounding and per-structure overheads allow
        // slack, but the configuration must be in the budget's
        // ballpark: within a factor of four below, never more than
        // ~1.5x above.
        EXPECT_GE(p->storageBytes(), budget / 4)
            << kindName(GetParam()) << " @ " << budget;
        EXPECT_LE(p->storageBytes(), budget + budget / 2)
            << kindName(GetParam()) << " @ " << budget;
    }
}

TEST_P(FactoryKindTest, StorageGrowsWithBudget)
{
    std::size_t prev = 0;
    for (std::size_t budget : largeBudgetsBytes()) {
        auto p = makePredictor(GetParam(), budget);
        EXPECT_GT(p->storageBits(), prev);
        prev = p->storageBits();
    }
}

TEST_P(FactoryKindTest, LatencyMonotoneInBudget)
{
    unsigned prev = 0;
    for (std::size_t budget : largeBudgetsBytes()) {
        const unsigned l = predictorLatencyCycles(GetParam(), budget);
        EXPECT_GE(l, prev) << kindName(GetParam());
        EXPECT_GE(l, 1u);
        prev = l;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FactoryKindTest, ::testing::ValuesIn(allKinds()),
    [](const auto &info) {
        std::string n = kindName(info.param);
        for (char &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Factory, KindNamesAreUnique)
{
    std::set<std::string> names;
    for (auto k : allKinds())
        EXPECT_TRUE(names.insert(kindName(k)).second);
}

TEST(Factory, LargePredictorListMatchesFigure5)
{
    const auto &kinds = largePredictorKinds();
    ASSERT_EQ(kinds.size(), 4u);
    EXPECT_EQ(kinds[0], PredictorKind::MultiComponent);
    EXPECT_EQ(kinds[1], PredictorKind::Gskew);
    EXPECT_EQ(kinds[2], PredictorKind::Perceptron);
    EXPECT_EQ(kinds[3], PredictorKind::GshareFast);
}

TEST(Factory, PaperDelayAnchors)
{
    // Section 4.1.2: gshare-family at 512 KB is an 11-cycle access;
    // the perceptron adds a compute cycle on top of its table read;
    // everything at small budgets is a handful of cycles.
    EXPECT_EQ(predictorLatencyCycles(PredictorKind::Gshare, 512 * 1024),
              11u);
    EXPECT_GE(
        predictorLatencyCycles(PredictorKind::Perceptron, 512 * 1024),
        8u);
    EXPECT_LE(predictorLatencyCycles(PredictorKind::Gskew, 16 * 1024),
              2u);
}

TEST(Factory, GshareFastAlwaysPresentsSingleCycle)
{
    for (std::size_t budget : largeBudgetsBytes()) {
        for (auto mode : {DelayMode::Ideal, DelayMode::Overriding,
                          DelayMode::Stall, DelayMode::Pipelined}) {
            auto fp = makeFetchPredictor(PredictorKind::GshareFast,
                                         budget, mode);
            const auto r = fp->predict(0x4000);
            EXPECT_EQ(r.bubbleCycles, 0u)
                << "gshare.fast is pipelined: no bubbles ever";
            fp->update(0x4000, true);
        }
    }
}

TEST(Factory, OverridingWrapsComplexPredictors)
{
    auto fp = makeFetchPredictor(PredictorKind::Perceptron, 256 * 1024,
                                 DelayMode::Overriding);
    auto *over = dynamic_cast<OverridingFetchPredictor *>(fp.get());
    ASSERT_NE(over, nullptr);
    EXPECT_EQ(over->slowLatency(),
              predictorLatencyCycles(PredictorKind::Perceptron,
                                     256 * 1024));
    // The quick predictor is the paper's 2K-entry gshare.
    EXPECT_EQ(over->quick().storageBits(),
              quickPredictorEntries * 2 + 11);
}

TEST(Factory, IdealModeIsSingleCycle)
{
    auto fp = makeFetchPredictor(PredictorKind::MultiComponent,
                                 512 * 1024, DelayMode::Ideal);
    EXPECT_EQ(fp->predict(0x40).bubbleCycles, 0u);
}

TEST(Factory, StallModeBubblesEveryBranch)
{
    auto fp = makeFetchPredictor(PredictorKind::Gskew, 512 * 1024,
                                 DelayMode::Stall);
    const unsigned latency =
        predictorLatencyCycles(PredictorKind::Gskew, 512 * 1024);
    EXPECT_EQ(fp->predict(0x40).bubbleCycles, latency - 1);
}

TEST(Factory, DualPathAndCascadingModesConstruct)
{
    auto dual = makeFetchPredictor(PredictorKind::Gskew, 256 * 1024,
                                   DelayMode::DualPath);
    EXPECT_NE(dual->name().find("dualpath"), std::string::npos);
    EXPECT_GT(dual->predict(0x40).bubbleCycles, 0u);

    auto casc = makeFetchPredictor(PredictorKind::Gskew, 256 * 1024,
                                   DelayMode::Cascading);
    EXPECT_NE(casc->name().find("cascading"), std::string::npos);
    EXPECT_EQ(casc->predict(0x40).bubbleCycles, 0u);
}

TEST(Factory, DelayModeNamesAreDistinct)
{
    std::set<std::string> names;
    for (auto m : {DelayMode::Ideal, DelayMode::Overriding,
                   DelayMode::Stall, DelayMode::Pipelined,
                   DelayMode::DualPath, DelayMode::Cascading})
        EXPECT_TRUE(names.insert(delayModeName(m)).second);
}

TEST(Factory, YagsConfigurationIsBalanced)
{
    auto y = makePredictor(PredictorKind::Yags, 64 * 1024);
    EXPECT_EQ(y->name(), "yags");
    // Roughly half choice, half tagged caches: storage in budget.
    EXPECT_GE(y->storageBytes(), 16u * 1024);
    EXPECT_LE(y->storageBytes(), 96u * 1024);
}

TEST(Factory, BudgetListsMatchPaper)
{
    EXPECT_EQ(largeBudgetsBytes().size(), 6u);
    EXPECT_EQ(largeBudgetsBytes().front(), 16u * 1024);
    EXPECT_EQ(largeBudgetsBytes().back(), 512u * 1024);
    EXPECT_EQ(figure1BudgetsBytes().front(), 2u * 1024);
}

} // namespace
} // namespace bpsim
